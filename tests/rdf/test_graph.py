"""Tests for the KnowledgeGraph view: classes, labels, adjacency, paths."""

import pytest

from repro.rdf import (
    IRI,
    KnowledgeGraph,
    Literal,
    RDF_TYPE,
    RDFS_LABEL,
    RDFS_SUBCLASSOF,
    Triple,
    TripleStore,
)
from repro.rdf.graph import (
    Direction,
    backward_step,
    encode_step,
    forward_step,
    reverse_path,
    step_is_forward,
    step_predicate,
)


@pytest.fixture
def kg():
    """The running example of the paper's Figure 1 in miniature."""
    store = TripleStore()
    e = lambda name: IRI(f"ex:{name}")
    store.add_all(
        [
            Triple(e("Antonio_Banderas"), e("spouse"), e("Melanie_Griffith")),
            Triple(e("Antonio_Banderas"), e("starring"), e("Philadelphia_(film)")),
            Triple(e("Antonio_Banderas"), RDF_TYPE, e("Actor")),
            Triple(e("Actor"), RDFS_SUBCLASSOF, e("Person")),
            Triple(e("Aaron_McKie"), e("playsFor"), e("Philadelphia_76ers")),
            Triple(e("Antonio_Banderas"), RDFS_LABEL, Literal("Antonio Banderas")),
            Triple(e("Philadelphia_(film)"), RDFS_LABEL, Literal("Philadelphia")),
            Triple(e("Antonio_Banderas"), e("height"), Literal("1.74")),
        ]
    )
    return KnowledgeGraph(store)


def nid(kg, name):
    return kg.id_of(IRI(f"ex:{name}"))


class TestClassDetection:
    def test_type_object_is_class(self, kg):
        assert kg.is_class(nid(kg, "Actor"))

    def test_subclass_parent_is_class(self, kg):
        assert kg.is_class(nid(kg, "Person"))

    def test_entity_is_not_class(self, kg):
        assert not kg.is_class(nid(kg, "Antonio_Banderas"))
        assert kg.is_entity(nid(kg, "Antonio_Banderas"))

    def test_literal_is_not_entity(self, kg):
        literal_id = kg.store.dictionary.lookup(Literal("1.74"))
        assert not kg.is_entity(literal_id)

    def test_entity_ids_exclude_classes(self, kg):
        entities = kg.entity_ids()
        assert nid(kg, "Antonio_Banderas") in entities
        assert nid(kg, "Actor") not in entities


class TestTypes:
    def test_direct_types(self, kg):
        assert kg.types_of(nid(kg, "Antonio_Banderas")) == {nid(kg, "Actor")}

    def test_transitive_types_include_superclass(self, kg):
        types = kg.types_of_transitive(nid(kg, "Antonio_Banderas"))
        assert nid(kg, "Person") in types

    def test_has_type_direct_and_transitive(self, kg):
        banderas = nid(kg, "Antonio_Banderas")
        assert kg.has_type(banderas, nid(kg, "Actor"))
        assert kg.has_type(banderas, nid(kg, "Person"))
        assert not kg.has_type(banderas, nid(kg, "Philadelphia_76ers"))

    def test_instances_of_transitive(self, kg):
        assert nid(kg, "Antonio_Banderas") in kg.instances_of(nid(kg, "Person"))

    def test_instances_of_non_transitive(self, kg):
        assert kg.instances_of(nid(kg, "Person"), transitive=False) == set()


class TestLabels:
    def test_label_from_rdfs_label(self, kg):
        assert kg.label_of(nid(kg, "Philadelphia_(film)")) == "Philadelphia"

    def test_label_fallback_to_local_name(self, kg):
        assert kg.label_of(nid(kg, "Melanie_Griffith")) == "Melanie Griffith"

    def test_all_labels(self, kg):
        assert kg.all_labels(nid(kg, "Antonio_Banderas")) == ["Antonio Banderas"]
        assert kg.all_labels(nid(kg, "Melanie_Griffith")) == []

    def test_refresh_picks_up_new_labels(self, kg):
        griffith = IRI("ex:Melanie_Griffith")
        kg.store.add(Triple(griffith, RDFS_LABEL, Literal("Melanie Griffith (actress)")))
        kg.refresh()
        assert kg.label_of(nid(kg, "Melanie_Griffith")) == "Melanie Griffith (actress)"


class TestAdjacency:
    def test_edges_both_directions(self, kg):
        banderas = nid(kg, "Antonio_Banderas")
        edges = list(kg.edges(banderas))
        directions = {(kg.iri_of(e.predicate).local_name, e.direction) for e in edges}
        assert ("spouse", Direction.OUT) in directions

        griffith = nid(kg, "Melanie_Griffith")
        incoming = list(kg.edges(griffith))
        assert any(e.direction is Direction.IN for e in incoming)

    def test_edges_skip_structural_by_default(self, kg):
        banderas = nid(kg, "Antonio_Banderas")
        predicates = {kg.iri_of(e.predicate) for e in kg.edges(banderas)}
        assert RDF_TYPE not in predicates
        assert RDFS_LABEL not in predicates

    def test_edges_include_structural_on_request(self, kg):
        banderas = nid(kg, "Antonio_Banderas")
        predicates = {
            kg.iri_of(e.predicate) for e in kg.edges(banderas, include_structural=True)
        }
        assert RDF_TYPE in predicates

    def test_undirected_neighbors_skip_literals(self, kg):
        banderas = nid(kg, "Antonio_Banderas")
        literal_id = kg.store.dictionary.lookup(Literal("1.74"))
        neighbors = {e.node for e in kg.undirected_neighbors(banderas)}
        assert literal_id not in neighbors

    def test_degree(self, kg):
        # spouse(out), starring(out), height(out literal)
        assert kg.degree(nid(kg, "Antonio_Banderas")) == 3

    def test_incident_predicates(self, kg):
        griffith = nid(kg, "Melanie_Griffith")
        spouse = kg.id_of(IRI("ex:spouse"))
        assert (spouse, Direction.IN) in kg.incident_predicates(griffith)


class TestPathEncoding:
    def test_roundtrip_forward(self):
        step = forward_step(0)
        assert step_predicate(step) == 0
        assert step_is_forward(step)

    def test_roundtrip_backward(self):
        step = backward_step(0)
        assert step_predicate(step) == 0
        assert not step_is_forward(step)

    def test_encode_step_direction(self):
        assert encode_step(3, Direction.OUT) == forward_step(3)
        assert encode_step(3, Direction.IN) == backward_step(3)

    def test_reverse_path(self):
        path = (forward_step(1), backward_step(2))
        assert reverse_path(path) == (forward_step(2), backward_step(1))
        assert reverse_path(reverse_path(path)) == path


class TestPathWalking:
    def test_walk_single_forward_step(self, kg):
        spouse = kg.id_of(IRI("ex:spouse"))
        result = kg.walk_path(nid(kg, "Antonio_Banderas"), (forward_step(spouse),))
        assert result == {nid(kg, "Melanie_Griffith")}

    def test_walk_single_backward_step(self, kg):
        spouse = kg.id_of(IRI("ex:spouse"))
        result = kg.walk_path(nid(kg, "Melanie_Griffith"), (backward_step(spouse),))
        assert result == {nid(kg, "Antonio_Banderas")}

    def test_walk_two_hop(self, kg):
        spouse = kg.id_of(IRI("ex:spouse"))
        starring = kg.id_of(IRI("ex:starring"))
        # Griffith -(spouse^-1)-> Banderas -(starring)-> Philadelphia(film)
        path = (backward_step(spouse), forward_step(starring))
        assert kg.walk_path(nid(kg, "Melanie_Griffith"), path) == {
            nid(kg, "Philadelphia_(film)")
        }

    def test_walk_dead_end_is_empty(self, kg):
        starring = kg.id_of(IRI("ex:starring"))
        assert kg.walk_path(nid(kg, "Melanie_Griffith"), (forward_step(starring),)) == set()

    def test_path_connects(self, kg):
        spouse = kg.id_of(IRI("ex:spouse"))
        assert kg.path_connects(
            nid(kg, "Antonio_Banderas"), nid(kg, "Melanie_Griffith"), (forward_step(spouse),)
        )
        assert not kg.path_connects(
            nid(kg, "Antonio_Banderas"), nid(kg, "Aaron_McKie"), (forward_step(spouse),)
        )

    def test_reverse_path_connects_back(self, kg):
        spouse = kg.id_of(IRI("ex:spouse"))
        starring = kg.id_of(IRI("ex:starring"))
        path = (backward_step(spouse), forward_step(starring))
        assert kg.path_connects(
            nid(kg, "Philadelphia_(film)"), nid(kg, "Melanie_Griffith"), reverse_path(path)
        )


class TestSubclassCycles:
    def test_transitive_types_terminate_on_cycle(self):
        """A subClassOf cycle in dirty data must not hang the closure."""
        store = TripleStore()
        store.add(Triple(IRI("c:A"), RDFS_SUBCLASSOF, IRI("c:B")))
        store.add(Triple(IRI("c:B"), RDFS_SUBCLASSOF, IRI("c:A")))
        store.add(Triple(IRI("c:x"), RDF_TYPE, IRI("c:A")))
        cyclic = KnowledgeGraph(store)
        x = cyclic.id_of(IRI("c:x"))
        types = cyclic.types_of_transitive(x)
        assert cyclic.id_of(IRI("c:A")) in types
        assert cyclic.id_of(IRI("c:B")) in types

    def test_instances_terminate_on_cycle(self):
        store = TripleStore()
        store.add(Triple(IRI("c:A"), RDFS_SUBCLASSOF, IRI("c:B")))
        store.add(Triple(IRI("c:B"), RDFS_SUBCLASSOF, IRI("c:A")))
        store.add(Triple(IRI("c:x"), RDF_TYPE, IRI("c:A")))
        cyclic = KnowledgeGraph(store)
        b = cyclic.id_of(IRI("c:B"))
        assert cyclic.id_of(IRI("c:x")) in cyclic.instances_of(b)
