"""Tests for the triple store and its permutation indexes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf import IRI, Literal, Triple, TripleStore


def t(s, p, o):
    obj = o if isinstance(o, Literal) else IRI(o)
    return Triple(IRI(s), IRI(p), obj)


@pytest.fixture
def store():
    store = TripleStore()
    store.add_all(
        [
            t("ex:banderas", "ex:spouse", "ex:griffith"),
            t("ex:banderas", "ex:starring", "ex:philadelphia_film"),
            t("ex:banderas", "ex:type", "ex:Actor"),
            t("ex:hanks", "ex:starring", "ex:philadelphia_film"),
            t("ex:banderas", "ex:height", Literal("1.74")),
        ]
    )
    return store


class TestMutation:
    def test_add_returns_true_for_new(self):
        store = TripleStore()
        assert store.add(t("ex:a", "ex:p", "ex:b")) is True

    def test_add_duplicate_returns_false_and_keeps_size(self):
        store = TripleStore()
        store.add(t("ex:a", "ex:p", "ex:b"))
        assert store.add(t("ex:a", "ex:p", "ex:b")) is False
        assert len(store) == 1

    def test_add_all_counts_new_only(self):
        store = TripleStore()
        n = store.add_all([t("ex:a", "ex:p", "ex:b"), t("ex:a", "ex:p", "ex:b")])
        assert n == 1

    def test_remove_present(self, store):
        assert store.remove(t("ex:banderas", "ex:spouse", "ex:griffith")) is True
        assert t("ex:banderas", "ex:spouse", "ex:griffith") not in store
        assert len(store) == 4

    def test_remove_absent_returns_false(self, store):
        assert store.remove(t("ex:nobody", "ex:spouse", "ex:griffith")) is False
        assert len(store) == 5

    def test_remove_then_requery_all_indexes(self, store):
        store.remove(t("ex:hanks", "ex:starring", "ex:philadelphia_film"))
        assert list(store.triples(subject=IRI("ex:hanks"))) == []
        starring = list(store.triples(predicate=IRI("ex:starring")))
        assert len(starring) == 1
        by_object = list(store.triples(object=IRI("ex:philadelphia_film")))
        assert all(tr.subject != IRI("ex:hanks") for tr in by_object)

    def test_readd_after_remove(self, store):
        triple = t("ex:banderas", "ex:spouse", "ex:griffith")
        store.remove(triple)
        assert store.add(triple) is True
        assert triple in store


class TestPatternMatching:
    def test_fully_bound_hit_and_miss(self, store):
        assert t("ex:banderas", "ex:spouse", "ex:griffith") in store
        assert t("ex:banderas", "ex:spouse", "ex:hanks") not in store

    def test_subject_bound(self, store):
        results = list(store.triples(subject=IRI("ex:banderas")))
        assert len(results) == 4

    def test_predicate_bound(self, store):
        results = list(store.triples(predicate=IRI("ex:starring")))
        subjects = {tr.subject for tr in results}
        assert subjects == {IRI("ex:banderas"), IRI("ex:hanks")}

    def test_object_bound(self, store):
        results = list(store.triples(object=IRI("ex:philadelphia_film")))
        assert len(results) == 2

    def test_subject_predicate_bound(self, store):
        results = list(
            store.triples(subject=IRI("ex:banderas"), predicate=IRI("ex:starring"))
        )
        assert [tr.object for tr in results] == [IRI("ex:philadelphia_film")]

    def test_predicate_object_bound(self, store):
        results = list(
            store.triples(predicate=IRI("ex:starring"), object=IRI("ex:philadelphia_film"))
        )
        assert {tr.subject for tr in results} == {IRI("ex:banderas"), IRI("ex:hanks")}

    def test_subject_object_bound(self, store):
        results = list(
            store.triples(subject=IRI("ex:banderas"), object=IRI("ex:philadelphia_film"))
        )
        assert [tr.predicate for tr in results] == [IRI("ex:starring")]

    def test_all_wildcards(self, store):
        assert len(list(store.triples())) == 5

    def test_unknown_bound_term_matches_nothing(self, store):
        assert list(store.triples(subject=IRI("ex:never_seen"))) == []

    def test_literal_object_pattern(self, store):
        results = list(store.triples(object=Literal("1.74")))
        assert len(results) == 1
        assert results[0].predicate == IRI("ex:height")


class TestCounts:
    def test_total(self, store):
        assert store.count() == 5

    def test_sp_count(self, store):
        s = store.dictionary.lookup(IRI("ex:banderas"))
        p = store.dictionary.lookup(IRI("ex:starring"))
        assert store.count(s=s, p=p) == 1

    def test_po_count(self, store):
        p = store.dictionary.lookup(IRI("ex:starring"))
        o = store.dictionary.lookup(IRI("ex:philadelphia_film"))
        assert store.count(p=p, o=o) == 2

    def test_generic_count_matches_iteration(self, store):
        p = store.dictionary.lookup(IRI("ex:starring"))
        assert store.count(p=p) == len(list(store.triples_ids(p=p)))


class TestVocabulary:
    def test_statistics(self, store):
        stats = store.statistics()
        assert stats["triples"] == 5
        assert stats["predicates"] == 4
        assert stats["literals"] == 1
        # nodes: banderas, griffith, philadelphia_film, Actor, hanks
        assert stats["nodes"] == 5

    def test_node_ids_exclude_literals(self, store):
        literal_id = store.dictionary.lookup(Literal("1.74"))
        assert literal_id not in store.node_ids()

    def test_is_literal_id(self, store):
        literal_id = store.dictionary.lookup(Literal("1.74"))
        entity_id = store.dictionary.lookup(IRI("ex:banderas"))
        assert store.is_literal_id(literal_id)
        assert not store.is_literal_id(entity_id)

    def test_predicates_listing(self, store):
        predicates = set(store.predicates())
        assert IRI("ex:spouse") in predicates
        assert len(predicates) == 4


class TestLiteralBookkeeping:
    def test_remove_last_use_drops_literal_id(self, store):
        """Removing the only triple holding a literal must also drop the
        id from the literal set, or statistics()/is_literal_id keep
        reporting a literal the store no longer contains."""
        literal_id = store.dictionary.lookup(Literal("1.74"))
        assert store.remove(t("ex:banderas", "ex:height", Literal("1.74")))
        assert not store.is_literal_id(literal_id)
        assert store.statistics()["literals"] == 0
        assert list(store.iter_literal_ids()) == []

    def test_remove_keeps_literal_while_still_used(self, store):
        store.add(t("ex:griffith", "ex:height", Literal("1.74")))
        literal_id = store.dictionary.lookup(Literal("1.74"))
        store.remove(t("ex:banderas", "ex:height", Literal("1.74")))
        assert store.is_literal_id(literal_id)
        assert store.statistics()["literals"] == 1

    def test_readd_after_full_removal(self, store):
        triple = t("ex:banderas", "ex:height", Literal("1.74"))
        store.remove(triple)
        assert store.add(triple)
        assert store.is_literal_id(store.dictionary.lookup(Literal("1.74")))


# ---------------------------------------------------------------------- #
# Property-based: the three permutation indexes always agree.
# ---------------------------------------------------------------------- #

iris = st.integers(min_value=0, max_value=8).map(lambda i: IRI(f"ex:n{i}"))
triples = st.builds(Triple, iris, iris, iris)


@settings(max_examples=60, deadline=None)
@given(st.lists(triples, max_size=40), st.lists(triples, max_size=10))
def test_indexes_agree_under_adds_and_removes(to_add, to_remove):
    store = TripleStore()
    store.add_all(to_add)
    for triple in to_remove:
        store.remove(triple)
    expected = set(to_add) - set(to_remove)
    assert set(store.triples()) == expected
    assert len(store) == len(expected)
    # Every pattern shape agrees with a brute-force filter of the full set.
    for triple in expected:
        assert set(store.triples(subject=triple.subject)) == {
            other for other in expected if other.subject == triple.subject
        }
        assert set(store.triples(predicate=triple.predicate)) == {
            other for other in expected if other.predicate == triple.predicate
        }
        assert set(store.triples(object=triple.object)) == {
            other for other in expected if other.object == triple.object
        }


@settings(max_examples=40, deadline=None)
@given(st.lists(triples, max_size=40))
def test_count_matches_iteration(all_triples):
    store = TripleStore()
    store.add_all(all_triples)
    for triple in all_triples:
        s = store.dictionary.lookup(triple.subject)
        p = store.dictionary.lookup(triple.predicate)
        assert store.count(s=s, p=p) == len(list(store.triples_ids(s=s, p=p)))
