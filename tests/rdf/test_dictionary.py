"""Tests for dictionary encoding of terms."""

import pytest

from repro.exceptions import TermNotFoundError
from repro.rdf import IRI, Literal, TermDictionary


class TestTermDictionary:
    def test_encode_assigns_dense_ids(self):
        d = TermDictionary()
        ids = [d.encode(IRI(f"ex:{i}")) for i in range(5)]
        assert ids == [0, 1, 2, 3, 4]

    def test_encode_is_idempotent(self):
        d = TermDictionary()
        first = d.encode(IRI("ex:a"))
        second = d.encode(IRI("ex:a"))
        assert first == second
        assert len(d) == 1

    def test_roundtrip(self):
        d = TermDictionary()
        terms = [IRI("ex:a"), Literal("x"), Literal("x", language="en")]
        for term in terms:
            assert d.decode(d.encode(term)) == term

    def test_distinct_literals_get_distinct_ids(self):
        d = TermDictionary()
        assert d.encode(Literal("x")) != d.encode(Literal("x", language="en"))

    def test_lookup_missing_raises(self):
        d = TermDictionary()
        with pytest.raises(TermNotFoundError):
            d.lookup(IRI("ex:missing"))

    def test_lookup_or_none(self):
        d = TermDictionary()
        assert d.lookup_or_none(IRI("ex:missing")) is None
        d.encode(IRI("ex:a"))
        assert d.lookup_or_none(IRI("ex:a")) == 0

    def test_decode_out_of_range_raises(self):
        d = TermDictionary()
        with pytest.raises(TermNotFoundError):
            d.decode(0)
        d.encode(IRI("ex:a"))
        with pytest.raises(TermNotFoundError):
            d.decode(1)
        with pytest.raises(TermNotFoundError):
            d.decode(-1)

    def test_contains_and_iter(self):
        d = TermDictionary()
        d.encode(IRI("ex:a"))
        assert IRI("ex:a") in d
        assert IRI("ex:b") not in d
        assert list(d) == [IRI("ex:a")]

    def test_decode_many_preserves_order(self):
        d = TermDictionary()
        a = d.encode(IRI("ex:a"))
        b = d.encode(IRI("ex:b"))
        assert d.decode_many([b, a]) == [IRI("ex:b"), IRI("ex:a")]
