"""Tests for file-level store load/save."""

import pytest

from repro.datasets import build_dbpedia_mini
from repro.exceptions import RDFSyntaxError
from repro.rdf import IRI, Literal, Triple, TripleStore
from repro.rdf.io import load_knowledge_graph, load_store, save_store


class TestRoundTrip:
    def test_store_roundtrip(self, tmp_path):
        store = TripleStore()
        store.add(Triple(IRI("ex:a"), IRI("ex:p"), IRI("ex:b")))
        store.add(Triple(IRI("ex:a"), IRI("ex:label"), Literal("A", language="en")))
        path = tmp_path / "data.nt"
        count = save_store(store, path)
        assert count == 2
        restored = load_store(path)
        assert set(restored.triples()) == set(store.triples())

    def test_mini_dbpedia_roundtrip(self, tmp_path):
        kg = build_dbpedia_mini()
        path = tmp_path / "dbpedia_mini.nt"
        save_store(kg.store, path)
        restored = load_knowledge_graph(path)
        assert restored.store.statistics() == kg.store.statistics()
        assert set(restored.store.triples()) == set(kg.store.triples())

    def test_deterministic_output(self, tmp_path):
        kg = build_dbpedia_mini()
        first = tmp_path / "a.nt"
        second = tmp_path / "b.nt"
        save_store(kg.store, first)
        save_store(kg.store, second)
        assert first.read_text() == second.read_text()

    def test_loaded_graph_answers_questions(self, tmp_path):
        from repro.core import GAnswer
        from repro.datasets import build_phrase_dataset
        from repro.paraphrase import ParaphraseMiner

        path = tmp_path / "kb.nt"
        save_store(build_dbpedia_mini().store, path)
        kg = load_knowledge_graph(path)
        dictionary = ParaphraseMiner(kg, max_path_length=2, top_k=3).mine(
            build_phrase_dataset()
        )
        result = GAnswer(kg, dictionary).answer("Who is the mayor of Berlin?")
        assert [str(a) for a in result.answers] == ["res:Klaus_Wowereit"]

    def test_syntax_error_propagates(self, tmp_path):
        path = tmp_path / "bad.nt"
        path.write_text("<a> <b> garbage .\n")
        with pytest.raises(RDFSyntaxError):
            load_store(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.nt"
        path.write_text("")
        assert len(load_store(path)) == 0
