"""Overlay backend tests: merge equivalence, mutation semantics, kernel
patching, compaction, and answer identity.

The contract under test: an :class:`OverlayBackend` (frozen base + delta
adds + tombstones) is observably identical to a :class:`DictBackend`
rebuilt from the merged triples — at delta size 0, 1, and 1000, over
compact and sharded bases, through randomized interleavings of adds,
removes, and re-adds of tombstoned triples.  On top of that: per-triple
version monotonicity (including the bulk path), incremental kernel rows
byte-identical to a cold rebuild with untouched rows reused *by
reference*, and full-QALD answer identity across dict / overlay /
post-compaction engines.
"""

import random

import pytest

from repro.core import GAnswer
from repro.datasets import build_dbpedia_mini, build_phrase_dataset, qald_questions
from repro.exceptions import StoreFrozenError
from repro.paraphrase import ParaphraseMiner
from repro.rdf import IRI, Literal, Triple
from repro.rdf.backend import CompactBackend, DictBackend
from repro.rdf.graph import KnowledgeGraph
from repro.rdf.kernel import AdjacencyKernel
from repro.rdf.overlay import OverlayBackend
from repro.rdf.shard import ShardedBackend
from repro.rdf.store import TripleStore

DELTA_SIZES = (0, 1, 1000)


def random_triples(rng, count, subjects=200, predicates=9, objects=260):
    seen = set()
    while len(seen) < count:
        seen.add((
            rng.randrange(subjects),
            1000 + rng.randrange(predicates),
            2000 + rng.randrange(objects),
        ))
    return sorted(seen)


def rebuilt_reference(triples):
    reference = DictBackend()
    reference.add_all_ids(triples)
    return reference


def assert_observably_identical(overlay, reference):
    """Every StoreBackend read view matches, order-insensitively.

    (The base iterates in compact-sorted order while a rebuilt dict
    backend iterates in insertion order, so sequences are compared as
    sorted lists and index views as plain dicts of sets.)
    """
    full = sorted(reference.triples_ids())
    assert sorted(overlay.triples_ids()) == full
    assert len(overlay) == len(reference) == len(full)
    assert overlay.count() == len(full)

    subjects = sorted({s for s, _, _ in full})
    predicates = sorted({p for _, p, _ in full})
    objects = sorted({o for _, _, o in full})
    assert sorted(overlay.subject_ids()) == subjects
    assert sorted(overlay.predicate_ids()) == predicates
    assert sorted(overlay.object_ids()) == objects

    probe_s = subjects[::7] + [999_999]
    probe_p = predicates + [999_998]
    probe_o = objects[::9] + [999_997]
    for s in probe_s:
        assert sorted(overlay.triples_ids(s=s)) == sorted(
            reference.triples_ids(s=s)
        )
        assert overlay.count(s=s) == reference.count(s=s)
        assert {k: set(v) for k, v in overlay.out_index(s).items()} == {
            k: set(v) for k, v in reference.out_index(s).items()
        }
    for p in probe_p:
        assert sorted(overlay.triples_ids(p=p)) == sorted(
            reference.triples_ids(p=p)
        )
        assert overlay.count(p=p) == reference.count(p=p)
        assert sorted(overlay.objects_of_predicate(p)) == sorted(
            reference.objects_of_predicate(p)
        )
    for o in probe_o:
        assert sorted(overlay.triples_ids(o=o)) == sorted(
            reference.triples_ids(o=o)
        )
        assert overlay.count(o=o) == reference.count(o=o)
        assert {k: set(v) for k, v in overlay.in_index(o).items()} == {
            k: set(v) for k, v in reference.in_index(o).items()
        }
    for s in probe_s[:8]:
        for p in probe_p:
            assert set(overlay.objects_ids(s, p)) == set(
                reference.objects_ids(s, p)
            )
            assert sorted(overlay.triples_ids(s=s, p=p)) == sorted(
                reference.triples_ids(s=s, p=p)
            )
    for p in probe_p:
        for o in probe_o[:8]:
            assert set(overlay.subjects_ids(p, o)) == set(
                reference.subjects_ids(p, o)
            )
            assert overlay.count(p=p, o=o) == reference.count(p=p, o=o)
    for s, p, o in full[::11]:
        assert overlay.contains(s, p, o)
        assert overlay.count(s=s, p=p, o=o) == 1
        assert sorted(overlay.triples_ids(s=s, o=o)) == sorted(
            reference.triples_ids(s=s, o=o)
        )
    assert not overlay.contains(999_999, 999_998, 999_997)

    rows = {
        sid: {p: set(v) for p, v in row.items()}
        for sid, row in overlay.iter_out_rows()
    }
    assert rows == {
        sid: {p: set(v) for p, v in row.items()}
        for sid, row in reference.iter_out_rows()
    }


def frozen_base(triples, sharded=False):
    if sharded:
        return ShardedBackend.from_triples(triples, shards=4)
    return CompactBackend.from_triples(triples)


class TestMergeEquivalence:
    """Randomized adds/removes/re-adds vs a rebuilt DictBackend."""

    @pytest.mark.parametrize("delta", DELTA_SIZES)
    @pytest.mark.parametrize("sharded", (False, True), ids=("compact", "sharded"))
    def test_equivalent_to_rebuilt_dict_backend(self, delta, sharded):
        rng = random.Random(1234 + delta)
        base_triples = random_triples(rng, 1500)
        overlay = OverlayBackend(frozen_base(base_triples, sharded))
        mirror = set(base_triples)

        mutations = 0
        while mutations < delta:
            roll = rng.random()
            if roll < 0.55:  # fresh add (may collide with base: no-op)
                triple = (
                    rng.randrange(240),
                    1000 + rng.randrange(11),
                    2000 + rng.randrange(300),
                )
                if overlay.add(*triple):
                    assert triple not in mirror
                    mirror.add(triple)
                    mutations += 1
                else:
                    assert triple in mirror
            elif roll < 0.85 and mirror:  # remove (base → tombstone)
                triple = rng.choice(sorted(mirror))
                assert overlay.remove(*triple)
                mirror.discard(triple)
                mutations += 1
            else:  # re-add a tombstoned base triple
                tombstoned = [t for t in base_triples if t not in mirror]
                if not tombstoned:
                    continue
                triple = rng.choice(tombstoned)
                assert overlay.add(*triple)
                mirror.add(triple)
                mutations += 1

        stats = overlay.delta_statistics()
        assert stats["base_triples"] == len(base_triples)
        assert len(overlay) == len(mirror)
        assert_observably_identical(overlay, rebuilt_reference(sorted(mirror)))

    def test_zero_delta_reads_pass_through(self):
        base_triples = random_triples(random.Random(7), 300)
        base = frozen_base(base_triples)
        overlay = OverlayBackend(base)
        assert list(overlay.triples_ids()) == list(base.triples_ids())
        assert overlay.delta_statistics() == {
            "base_triples": 300, "delta_adds": 0, "tombstones": 0,
        }
        # Zero-delta index reads pass straight through to the base.
        s = base_triples[0][0]
        assert overlay.out_index(s) == base.out_index(s)


class TestMutationSemantics:
    def setup_method(self):
        self.base_triples = [(1, 10, 2), (1, 10, 3), (2, 11, 4)]
        self.overlay = OverlayBackend(CompactBackend.from_triples(self.base_triples))

    def test_requires_frozen_base(self):
        writable = DictBackend()
        with pytest.raises(ValueError):
            OverlayBackend(writable)

    def test_add_existing_base_triple_is_noop(self):
        version = self.overlay.version
        assert not self.overlay.add(1, 10, 2)
        assert self.overlay.version == version
        assert len(self.overlay) == 3

    def test_remove_then_readd_clears_tombstone(self):
        assert self.overlay.remove(1, 10, 2)
        assert not self.overlay.contains(1, 10, 2)
        assert self.overlay.delta_statistics()["tombstones"] == 1
        assert self.overlay.add(1, 10, 2)
        assert self.overlay.contains(1, 10, 2)
        # Re-add resurrects the base triple: no delta entry remains.
        assert self.overlay.delta_statistics() == {
            "base_triples": 3, "delta_adds": 0, "tombstones": 0,
        }

    def test_remove_delta_triple_drops_it(self):
        assert self.overlay.add(5, 12, 6)
        assert self.overlay.remove(5, 12, 6)
        assert self.overlay.delta_statistics() == {
            "base_triples": 3, "delta_adds": 0, "tombstones": 0,
        }
        assert not self.overlay.contains(5, 12, 6)

    def test_remove_absent_triple_is_noop(self):
        version = self.overlay.version
        assert not self.overlay.remove(9, 9, 9)
        assert self.overlay.remove(1, 10, 2)
        assert not self.overlay.remove(1, 10, 2)  # double remove
        assert self.overlay.version == version + 1

    def test_version_bumps_once_per_successful_mutation(self):
        v0 = self.overlay.version
        assert self.overlay.add(7, 13, 8)
        assert self.overlay.version == v0 + 1
        assert self.overlay.remove(7, 13, 8)
        assert self.overlay.version == v0 + 2

    def test_add_all_ids_is_per_triple_monotone(self):
        v0 = self.overlay.version
        batch = [(5, 12, 6), (5, 12, 7), (1, 10, 2), (5, 12, 6)]
        # Two fresh triples; one base duplicate and one batch duplicate.
        assert self.overlay.add_all_ids(batch) == 2
        assert self.overlay.version == v0 + 2

    def test_frozen_base_is_never_mutated(self):
        base = self.overlay.base
        before = sorted(base.triples_ids())
        self.overlay.add(5, 12, 6)
        self.overlay.remove(1, 10, 2)
        self.overlay.add_all_ids([(8, 14, 9)])
        assert sorted(base.triples_ids()) == before
        assert len(base) == 3
        with pytest.raises(StoreFrozenError):
            base.add(99, 99, 99)

    def test_touched_since_reports_dirty_nodes(self):
        v0 = self.overlay.version
        self.overlay.add(5, 12, 6)
        v1 = self.overlay.version
        self.overlay.remove(1, 10, 2)
        assert self.overlay.touched_since(v0) == {5, 6, 1, 2}
        assert self.overlay.touched_since(v1) == {1, 2}
        assert self.overlay.touched_since(self.overlay.version) == set()


@pytest.fixture(scope="module")
def setup():
    kg = build_dbpedia_mini()
    dictionary = ParaphraseMiner(kg, max_path_length=4, top_k=3).mine(
        build_phrase_dataset()
    )
    return kg, dictionary


class TestStoreIntegration:
    def test_overlay_store_shares_dictionary_and_version(self, setup):
        kg, _ = setup
        overlay = kg.store.compacted().overlay()
        assert overlay.writable
        assert overlay.version == kg.store.version
        assert len(overlay) == len(kg.store)
        assert overlay.dictionary is kg.store.dictionary

    def test_overlay_requires_frozen_backend(self, setup):
        kg, _ = setup
        with pytest.raises(ValueError):
            kg.store.overlay()  # dict-backed store is not frozen

    def test_literal_bookkeeping_follows_delta(self, setup):
        kg, _ = setup
        store = kg.store.compacted().overlay()
        triple = Triple(
            IRI("bench:s"), IRI("bench:p"), Literal("fresh value", language="en")
        )
        assert store.add(triple)
        oid = store.dictionary.lookup(triple.object)
        assert store.is_literal_id(oid)
        assert store.remove(triple)
        assert not store.is_literal_id(oid)

    def test_bulk_add_all_matches_serial_adds(self, setup):
        kg, _ = setup
        bulk = kg.store.compacted().overlay()
        serial = kg.store.compacted().overlay()
        triples = [
            Triple(IRI(f"bench:e{i % 5}"), IRI("bench:rel"), IRI(f"bench:e{i}"))
            for i in range(30)
        ] * 2  # duplicates: bulk must dedupe exactly like serial adds
        added = bulk.add_all(triples)
        assert added == sum(1 for t in triples if serial.add(t))
        assert bulk.version == serial.version
        assert sorted(bulk.triples_ids()) == sorted(serial.triples_ids())


class TestKernelPatch:
    """Incremental rows byte-identical; untouched rows reused by reference."""

    def _overlay_kg(self, setup):
        kg, _ = setup
        return KnowledgeGraph(kg.store.compacted().overlay())

    def test_patched_rows_byte_identical_to_cold_rebuild(self, setup):
        kg = self._overlay_kg(setup)
        store = kg.store
        old = AdjacencyKernel(store)
        store.add(Triple(IRI("res:Berlin"), IRI("bench:rel"), IRI("bench:new")))
        store.remove(
            Triple(IRI("res:Berlin"), IRI("ont:mayor"), IRI("res:Klaus_Wowereit"))
        )
        patched = AdjacencyKernel(store, patch_from=old)
        cold = AdjacencyKernel(store)
        assert patched.full_rows() == cold.full_rows()
        for node, row in cold.full_rows().items():
            assert patched.full_rows()[node] == row

    def test_untouched_rows_reused_by_reference(self, setup):
        kg = self._overlay_kg(setup)
        store = kg.store
        old = AdjacencyKernel(store)
        store.add(Triple(IRI("res:Berlin"), IRI("bench:rel"), IRI("bench:new")))
        dirty = store.backend.touched_since(old.store_version)
        patched = AdjacencyKernel(store, patch_from=old)
        old_rows, new_rows = old.full_rows(), patched.full_rows()
        reused = [n for n in old_rows if n not in dirty and n in new_rows]
        assert reused
        for node in reused:
            assert new_rows[node] is old_rows[node]

    def test_patch_over_successive_batches(self, setup):
        kg = self._overlay_kg(setup)
        store = kg.store
        kernel = AdjacencyKernel(store)
        rng = random.Random(99)
        for batch in range(4):
            store.add_all([
                Triple(
                    IRI(f"bench:b{batch}/e{rng.randrange(6)}"),
                    IRI("bench:rel"),
                    IRI(f"bench:b{batch}/e{rng.randrange(6)}"),
                )
                for _ in range(8)
            ])
            kernel = AdjacencyKernel(store, patch_from=kernel)
            assert kernel.full_rows() == AdjacencyKernel(store).full_rows()

    def test_refresh_incremental_matches_cold(self, setup):
        kg = self._overlay_kg(setup)
        before = kg.kernel.full_rows()
        kg.store.add(Triple(IRI("res:Berlin"), IRI("bench:rel"), IRI("bench:x")))
        kg.refresh(incremental=True)
        assert kg.kernel.full_rows() == AdjacencyKernel(kg.store).full_rows()
        assert kg.kernel.full_rows() != before


class TestCompaction:
    def test_recompacted_base_equivalent_and_version_preserved(self):
        rng = random.Random(42)
        base_triples = random_triples(rng, 800)
        overlay = OverlayBackend(frozen_base(base_triples))
        for triple in random_triples(rng, 120, subjects=40):
            overlay.add(*triple)
        for triple in base_triples[::13]:
            overlay.remove(*triple)
        merged = sorted(overlay.triples_ids())
        compacted = CompactBackend.from_triples(merged, version=overlay.version)
        fresh = OverlayBackend(compacted)
        assert fresh.version == overlay.version
        assert len(fresh) == len(overlay)
        assert fresh.delta_statistics()["delta_adds"] == 0
        assert_observably_identical(fresh, rebuilt_reference(merged))

    def test_sharded_recompaction_equivalent(self):
        rng = random.Random(43)
        base_triples = random_triples(rng, 500)
        overlay = OverlayBackend(frozen_base(base_triples))
        for triple in random_triples(rng, 60, subjects=30):
            overlay.add(*triple)
        merged = sorted(overlay.triples_ids())
        sharded = ShardedBackend.from_triples(
            merged, shards=4, version=overlay.version
        )
        assert sharded.version == overlay.version
        assert_observably_identical(
            OverlayBackend(sharded), rebuilt_reference(merged)
        )


class TestAnswerIdentity:
    def test_qald_answers_identical_dict_overlay_postcompaction(self, setup):
        """The acceptance bar: dict store, zero-delta overlay, dirty
        overlay (bench-namespace churn), and re-compacted engines answer
        the full QALD set byte-identically."""
        kg, dictionary = setup
        overlay_store = kg.store.compacted().overlay()

        dirty_store = kg.store.compacted().overlay()
        churn = [
            Triple(IRI(f"bench:c{i}"), IRI("bench:rel"), IRI(f"bench:c{i + 1}"))
            for i in range(40)
        ]
        assert dirty_store.add_all(churn) == 40
        for triple in churn:
            assert dirty_store.remove(triple)

        recompacted = TripleStore(
            backend=OverlayBackend(
                CompactBackend.from_triples(
                    dirty_store.backend.triples_ids(),
                    version=dirty_store.version,
                )
            ),
            dictionary=dirty_store.dictionary,
            literal_ids=dirty_store.iter_literal_ids(),
        )
        engines = [
            GAnswer(kg, dictionary),
            GAnswer(KnowledgeGraph(overlay_store), dictionary),
            GAnswer(KnowledgeGraph(dirty_store), dictionary),
            GAnswer(KnowledgeGraph(recompacted), dictionary),
        ]
        for question in qald_questions():
            results = [engine.answer(question.text) for engine in engines]
            expected = ([str(t) for t in results[0].answers], results[0].boolean)
            for result in results[1:]:
                assert ([str(t) for t in result.answers], result.boolean) == (
                    expected
                ), question.text
