"""Sharded backend tests: partitioning, merged views, kernel identity,
snapshot round trips, lazy loading, and answer equivalence.

The contract under test: a :class:`ShardedBackend` at any shard count is
observably identical to a single :class:`CompactBackend` over the same
triples — same iteration orders, same counts, same kernel rows, same
QALD answers — while bound-subject reads touch exactly one segment.
"""

import json

import pytest

from repro.core import GAnswer
from repro.datasets import build_dbpedia_mini, build_phrase_dataset, qald_questions
from repro.exceptions import SnapshotError, StoreFrozenError
from repro.paraphrase import ParaphraseMiner
from repro.rdf.backend import CompactBackend
from repro.rdf.graph import KnowledgeGraph
from repro.rdf.kernel import AdjacencyKernel
from repro.rdf.shard import (
    PARTITION_SCHEME,
    ShardedBackend,
    partition_triples,
    shard_of,
)
from repro.rdf.snapshot import compile_snapshot, load_snapshot
from repro.rdf.store import TripleStore

SHARD_COUNTS = (1, 2, 8)


@pytest.fixture(scope="module")
def setup():
    kg = build_dbpedia_mini()
    dictionary = ParaphraseMiner(kg, max_path_length=4, top_k=3).mine(
        build_phrase_dataset()
    )
    return kg, dictionary


@pytest.fixture(scope="module")
def stores(setup):
    kg, _ = setup
    compact = kg.store.compacted()
    sharded = {k: kg.store.sharded(k) for k in SHARD_COUNTS}
    return kg.store, compact, sharded


class TestPartition:
    def test_shard_of_is_deterministic_and_in_range(self):
        for shards in (1, 2, 7, 8, 64):
            for sid in range(0, 5000, 7):
                index = shard_of(sid, shards)
                assert 0 <= index < shards
                assert index == shard_of(sid, shards)

    def test_shard_of_decorrelates_strided_ids(self):
        # Dense ids of stride 2 (entity + its label literal) must still
        # cover every segment — the original motivation for hashing the
        # high bits instead of taking ids mod K.
        hit = {shard_of(sid, 8) for sid in range(0, 4000, 2)}
        assert hit == set(range(8))

    def test_partition_round_trips_every_triple(self, stores):
        base, _, _ = stores
        triples = sorted(base.triples_ids())
        partitions = partition_triples(triples, 8)
        assert sorted(t for part in partitions for t in part) == triples
        for index, part in enumerate(partitions):
            assert all(shard_of(s, 8) == index for s, _p, _o in part)

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            partition_triples([], 0)
        with pytest.raises(ValueError):
            ShardedBackend.from_triples([], shards=-1)


class TestBackendEquivalence:
    """Every read view matches a single CompactBackend, at every K."""

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_full_scan_order_identical(self, stores, shards):
        _, compact, sharded = stores
        assert list(sharded[shards].triples_ids()) == list(compact.triples_ids())

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_bound_patterns_identical(self, stores, shards):
        _, compact, store = stores
        store = store[shards]
        subjects = sorted(compact.backend.subject_ids())[:40]
        predicates = sorted(compact.backend.predicate_ids())
        objects = sorted(compact.backend.object_ids())[:40]
        for s in subjects:
            assert list(store.triples_ids(s=s)) == list(compact.triples_ids(s=s))
        for p in predicates:
            assert list(store.triples_ids(p=p)) == list(compact.triples_ids(p=p))
        for o in objects:
            assert list(store.triples_ids(o=o)) == list(compact.triples_ids(o=o))
        for s in subjects[:10]:
            for p in predicates[:5]:
                assert list(store.triples_ids(s=s, p=p)) == list(
                    compact.triples_ids(s=s, p=p)
                )
        for p in predicates[:5]:
            for o in objects[:10]:
                assert list(store.triples_ids(p=p, o=o)) == list(
                    compact.triples_ids(p=p, o=o)
                )

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_counts_identical(self, stores, shards):
        _, compact, store = stores
        store = store[shards]
        assert store.count() == compact.count() == len(compact)
        for s in sorted(compact.backend.subject_ids())[:20]:
            assert store.count(s=s) == compact.count(s=s)
        for p in sorted(compact.backend.predicate_ids()):
            assert store.count(p=p) == compact.count(p=p)

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_index_views_identical(self, stores, shards):
        _, compact, store = stores
        store = store[shards]
        for s in sorted(compact.backend.subject_ids())[:30]:
            assert dict(store.out_index(s)) == dict(compact.out_index(s))
        for o in sorted(compact.backend.object_ids())[:30]:
            theirs = compact.in_index(o)
            ours = store.in_index(o)
            assert dict(ours) == dict(theirs)
            assert list(ours) == list(theirs)  # same subject iteration order

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_vocabulary_iterators_identical(self, stores, shards):
        _, compact, store = stores
        store = store[shards]
        assert list(store.subject_ids()) == list(compact.subject_ids())
        assert list(store.predicate_ids()) == list(compact.predicate_ids())
        assert list(store.object_ids()) == list(compact.object_ids())
        for p in sorted(compact.backend.predicate_ids()):
            assert list(store.objects_of_predicate(p)) == list(
                compact.objects_of_predicate(p)
            )

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_iter_out_rows_identical(self, stores, shards):
        _, compact, store = stores
        rows = [
            (sid, {p: set(objs) for p, objs in row.items()})
            for sid, row in store[shards].iter_out_rows()
        ]
        reference = [
            (sid, {p: set(objs) for p, objs in row.items()})
            for sid, row in compact.iter_out_rows()
        ]
        assert rows == reference

    def test_sharded_store_is_frozen(self, stores):
        from repro.rdf import IRI, Triple

        _, _, sharded = stores
        with pytest.raises(StoreFrozenError):
            sharded[2].add(Triple(IRI("x:a"), IRI("x:b"), IRI("x:c")))
        with pytest.raises(StoreFrozenError):
            sharded[2].remove(Triple(IRI("x:a"), IRI("x:b"), IRI("x:c")))

    def test_version_carried_forward(self, stores):
        base, _, sharded = stores
        for store in sharded.values():
            assert store.version == base.version


class TestKernelIdentity:
    """Shard-parallel kernel rows are byte-identical to the serial build."""

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_rows_identical_across_shard_counts(self, stores, shards):
        base, compact, sharded = stores
        reference = AdjacencyKernel(compact).full_rows()
        rows = AdjacencyKernel(sharded[shards]).full_rows()
        assert rows == reference
        # Byte identity, not just set equality: tuple order matters to
        # the mined-path and matcher contracts.
        for node in reference:
            assert rows[node] == reference[node]

    def test_rows_identical_with_parallel_build(self, stores):
        _, compact, sharded = stores
        reference = AdjacencyKernel(compact).full_rows()
        rows = AdjacencyKernel(sharded[8], build_jobs=2).full_rows()
        assert rows == reference


class TestMinerDeterminism:
    def test_mined_dictionary_identical_over_sharded_store(self, setup, stores):
        kg, dictionary = setup
        _, _, sharded = stores
        sharded_kg = KnowledgeGraph(sharded[8])
        mined = ParaphraseMiner(
            sharded_kg, max_path_length=4, top_k=3, jobs=2
        ).mine(build_phrase_dataset())
        assert sorted(mined.phrases()) == sorted(dictionary.phrases())
        for phrase in dictionary.phrases():
            assert [
                (m.path, m.confidence) for m in mined.lookup(phrase)
            ] == [(m.path, m.confidence) for m in dictionary.lookup(phrase)]


@pytest.fixture(scope="module")
def snapshots(setup, tmp_path_factory):
    kg, dictionary = setup
    directory = tmp_path_factory.mktemp("shardsnap")
    single = directory / "single.snap"
    manifest = directory / "sharded.snap"
    compile_snapshot(single, kg, dictionary)
    info = compile_snapshot(manifest, kg, dictionary, shards=4, jobs=2)
    return single, manifest, info


class TestShardedSnapshot:
    def test_manifest_shape(self, snapshots):
        _, manifest, info = snapshots
        assert info.shards == 4
        payload = json.loads(manifest.read_text())
        assert payload["format"] == "reprosnap-manifest"
        assert payload["partition"] == PARTITION_SCHEME
        assert payload["shards"] == 4
        assert len(payload["segments"]) == 4
        assert sum(payload["segment_triples"]) == payload["triples"]
        for name in [payload["state"], *payload["segments"]]:
            assert (manifest.parent / name).exists()

    def test_lazy_load_defers_segments(self, snapshots, setup):
        kg, _ = setup
        _, manifest, _ = snapshots
        state = load_snapshot(manifest)
        backend = state.kg.store.backend
        assert isinstance(backend, ShardedBackend)
        assert backend.loaded_segments() == []
        # Size and per-segment counts answerable without loading anything.
        assert len(state.kg.store) == len(kg.store)
        assert backend.loaded_segments() == []

    def test_subject_query_touches_one_segment(self, snapshots):
        single, manifest, _ = snapshots
        reference = load_snapshot(single)
        state = load_snapshot(manifest)
        backend = state.kg.store.backend
        sid = next(iter(reference.kg.store.triples_ids()))[0]
        rows = list(state.kg.store.triples_ids(s=sid))
        assert rows == list(reference.kg.store.triples_ids(s=sid))
        assert backend.loaded_segments() == [backend.shard_of_subject(sid)]

    def test_evict_and_reload(self, snapshots):
        _, manifest, _ = snapshots
        state = load_snapshot(manifest)
        backend = state.kg.store.backend
        before = list(state.kg.store.triples_ids())
        assert backend.loaded_segments() == list(range(4))
        for index in range(4):
            assert backend.evict(index)
        assert backend.loaded_segments() == []
        assert not backend.evict(0)  # already evicted
        assert list(state.kg.store.triples_ids()) == before

    def test_eager_backend_refuses_evict(self, stores):
        _, _, sharded = stores
        assert sharded[2].backend.evict(0) is False

    def test_triples_and_kernel_match_single_snapshot(self, snapshots):
        single, manifest, _ = snapshots
        a = load_snapshot(single)
        b = load_snapshot(manifest)
        assert list(a.kg.store.triples_ids()) == list(b.kg.store.triples_ids())
        assert a.kg.kernel.full_rows() == b.kg.kernel.full_rows()
        assert sorted(a.dictionary.phrases()) == sorted(b.dictionary.phrases())

    def test_copy_mode_matches_mmap(self, snapshots):
        _, manifest, _ = snapshots
        mmapped = load_snapshot(manifest, mode="mmap")
        copied = load_snapshot(manifest, mode="copy")
        assert list(mmapped.kg.store.triples_ids()) == list(
            copied.kg.store.triples_ids()
        )
        column = copied.kg.store.backend.segment(0).permutation_columns()["spo"][0]
        from array import array

        assert isinstance(column, array)

    def test_qald_answers_identical_across_backends(self, setup, snapshots):
        """The acceptance bar: dict store, compact snapshot, and sharded
        manifest engines answer the full QALD set byte-identically."""
        kg, dictionary = setup
        single, manifest, _ = snapshots
        engines = [
            GAnswer(kg, dictionary),
        ]
        for path in (single, manifest):
            state = load_snapshot(path)
            engines.append(
                GAnswer(state.kg, state.dictionary, linker=state.build_linker())
            )
        for question in qald_questions():
            results = [engine.answer(question.text) for engine in engines]
            expected = ([str(t) for t in results[0].answers], results[0].boolean)
            for result in results[1:]:
                assert ([str(t) for t in result.answers], result.boolean) == (
                    expected
                ), question.text

    def test_engine_from_sharded_snapshot(self, snapshots):
        from repro.serve import QAEngine

        _, manifest, _ = snapshots
        engine = QAEngine.from_snapshot(manifest)
        try:
            result = engine.ask_answer("Who is the mayor of Berlin?")
            assert result.processed
            assert result.answers
            stats = engine.stats()
            assert stats["store"]["backend"] == "ShardedBackend"
            assert stats["store"]["shards"] == 4
        finally:
            engine.close()

    def test_compile_reuses_live_sharded_segments(self, setup, tmp_path):
        kg, dictionary = setup
        sharded_store = kg.store.sharded(3)
        sharded_kg = KnowledgeGraph(sharded_store)
        path = tmp_path / "live.snap"
        info = compile_snapshot(path, sharded_kg, dictionary, shards=3)
        assert info.shards == 3
        state = load_snapshot(path)
        assert list(state.kg.store.triples_ids()) == sorted(kg.store.triples_ids())


class TestShardedIntegrity:
    def _fresh(self, snapshots, tmp_path):
        """A private copy of the sharded snapshot set to corrupt."""
        _, manifest, _ = snapshots
        copies = {}
        names = [manifest.name, *(
            p.name for p in manifest.parent.iterdir() if p.name != manifest.name
        )]
        for name in names:
            data = (manifest.parent / name).read_bytes()
            (tmp_path / name).write_bytes(data)
        return tmp_path / manifest.name

    def test_corrupt_segment_detected_on_touch(self, snapshots, tmp_path):
        manifest = self._fresh(snapshots, tmp_path)
        segment = tmp_path / json.loads(manifest.read_text())["segments"][1]
        data = bytearray(segment.read_bytes())
        data[len(data) // 2] ^= 0xFF
        segment.write_bytes(bytes(data))
        state = load_snapshot(manifest)  # state container loads fine
        backend = state.kg.store.backend
        backend.segment(0)  # untouched segments still load
        with pytest.raises(SnapshotError):
            backend.segment(1)

    def test_swapped_segment_files_detected(self, snapshots, tmp_path):
        manifest = self._fresh(snapshots, tmp_path)
        names = json.loads(manifest.read_text())["segments"]
        a = (tmp_path / names[0]).read_bytes()
        b = (tmp_path / names[1]).read_bytes()
        (tmp_path / names[0]).write_bytes(b)
        (tmp_path / names[1]).write_bytes(a)
        backend = load_snapshot(manifest).kg.store.backend
        with pytest.raises(SnapshotError):
            backend.segment(0)

    def test_missing_segment_detected_at_load(self, snapshots, tmp_path):
        # Missing files are caught eagerly (the loader stats every member
        # for the size report) rather than surprising a query later.
        manifest = self._fresh(snapshots, tmp_path)
        names = json.loads(manifest.read_text())["segments"]
        (tmp_path / names[2]).unlink()
        with pytest.raises(SnapshotError):
            load_snapshot(manifest)

    def test_wrong_partition_scheme_rejected(self, snapshots, tmp_path):
        manifest = self._fresh(snapshots, tmp_path)
        payload = json.loads(manifest.read_text())
        payload["partition"] = "subject-mod/legacy"
        manifest.write_text(json.dumps(payload))
        with pytest.raises(SnapshotError):
            load_snapshot(manifest)

    def test_inconsistent_segment_counts_rejected(self, snapshots, tmp_path):
        manifest = self._fresh(snapshots, tmp_path)
        payload = json.loads(manifest.read_text())
        payload["segment_triples"][0] += 1
        manifest.write_text(json.dumps(payload))
        with pytest.raises(SnapshotError):
            load_snapshot(manifest)

    def test_future_manifest_version_rejected(self, snapshots, tmp_path):
        manifest = self._fresh(snapshots, tmp_path)
        payload = json.loads(manifest.read_text())
        payload["manifest_version"] = 99
        manifest.write_text(json.dumps(payload))
        with pytest.raises(SnapshotError):
            load_snapshot(manifest)

    def test_non_snapshot_json_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(SnapshotError):
            load_snapshot(path)
