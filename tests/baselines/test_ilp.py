"""Tests for the exact 0/1 ILP branch-and-bound solver."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.ilp import IntegerProgram, Sense
from repro.exceptions import ILPError, InfeasibleError


class TestBasics:
    def test_unconstrained_maximization(self):
        program = IntegerProgram()
        program.add_variable("a", 3.0)
        program.add_variable("b", -1.0)
        program.add_variable("c", 2.0)
        solution = program.solve()
        assert solution.assignment == {"a": 1, "b": 0, "c": 1}
        assert solution.objective == pytest.approx(5.0)

    def test_exactly_one_constraint(self):
        program = IntegerProgram()
        for name, weight in (("x1", 1.0), ("x2", 5.0), ("x3", 3.0)):
            program.add_variable(name, weight)
        program.add_constraint({"x1": 1, "x2": 1, "x3": 1}, Sense.EQ, 1.0)
        solution = program.solve()
        assert solution.assignment["x2"] == 1
        assert sum(solution.assignment.values()) == 1

    def test_knapsack_style(self):
        # values 6,5,4 with weights 3,2,2, capacity 4 → pick items 2+3.
        program = IntegerProgram()
        program.add_variable("i1", 6.0)
        program.add_variable("i2", 5.0)
        program.add_variable("i3", 4.0)
        program.add_constraint({"i1": 3, "i2": 2, "i3": 2}, Sense.LE, 4.0)
        solution = program.solve()
        assert solution.objective == pytest.approx(9.0)
        assert solution.assignment == {"i1": 0, "i2": 1, "i3": 1}

    def test_ge_constraint(self):
        program = IntegerProgram()
        program.add_variable("a", -2.0)
        program.add_variable("b", -5.0)
        program.add_constraint({"a": 1, "b": 1}, Sense.GE, 1.0)
        solution = program.solve()
        assert solution.assignment == {"a": 1, "b": 0}

    def test_infeasible(self):
        program = IntegerProgram()
        program.add_variable("a", 1.0)
        program.add_constraint({"a": 1}, Sense.GE, 2.0)
        with pytest.raises(InfeasibleError):
            program.solve()

    def test_pair_linearization(self):
        # y = x1 AND x2 linearized: y ≤ x1, y ≤ x2.
        program = IntegerProgram()
        program.add_variable("x1", 0.1)
        program.add_variable("x2", 0.1)
        program.add_variable("y", 1.0)
        program.add_constraint({"y": 1, "x1": -1}, Sense.LE, 0.0)
        program.add_constraint({"y": 1, "x2": -1}, Sense.LE, 0.0)
        solution = program.solve()
        assert solution.assignment == {"x1": 1, "x2": 1, "y": 1}

    def test_pair_variable_not_free(self):
        # With x2 forced off, y must be off too.
        program = IntegerProgram()
        program.add_variable("x1", 0.1)
        program.add_variable("x2", -5.0)
        program.add_variable("y", 1.0)
        program.add_constraint({"y": 1, "x1": -1}, Sense.LE, 0.0)
        program.add_constraint({"y": 1, "x2": -1}, Sense.LE, 0.0)
        solution = program.solve()
        assert solution.assignment["y"] == 0

    def test_duplicate_variable_rejected(self):
        program = IntegerProgram()
        program.add_variable("a", 1.0)
        with pytest.raises(ILPError):
            program.add_variable("a", 2.0)

    def test_unknown_variable_in_constraint(self):
        program = IntegerProgram()
        program.add_variable("a", 1.0)
        with pytest.raises(ILPError):
            program.add_constraint({"zzz": 1}, Sense.LE, 1.0)

    def test_empty_constraint_rejected(self):
        program = IntegerProgram()
        with pytest.raises(ILPError):
            program.add_constraint({}, Sense.LE, 1.0)


@settings(max_examples=40, deadline=None)
@given(
    objectives=st.lists(
        st.floats(min_value=-5, max_value=5, allow_nan=False), min_size=1, max_size=8
    ),
    capacity=st.integers(min_value=0, max_value=8),
)
def test_matches_brute_force(objectives, capacity):
    """B&B agrees with brute-force enumeration on random cardinality-
    constrained problems."""
    program = IntegerProgram()
    names = [f"x{i}" for i in range(len(objectives))]
    for name, objective in zip(names, objectives):
        program.add_variable(name, objective)
    program.add_constraint({name: 1.0 for name in names}, Sense.LE, float(capacity))
    solution = program.solve()

    best = float("-inf")
    for mask in range(2 ** len(objectives)):
        bits = [(mask >> i) & 1 for i in range(len(objectives))]
        if sum(bits) <= capacity:
            value = sum(b * o for b, o in zip(bits, objectives))
            best = max(best, value)
    assert solution.objective == pytest.approx(best)
