"""Shared fixtures for baseline tests."""

import pytest

from repro.datasets import build_dbpedia_mini, build_phrase_dataset
from repro.paraphrase import ParaphraseMiner


@pytest.fixture(scope="session")
def kg():
    return build_dbpedia_mini()


@pytest.fixture(scope="session")
def dictionary(kg):
    return ParaphraseMiner(kg, max_path_length=4, top_k=3).mine(build_phrase_dataset())
