"""Tests for the DEANNA baseline: joint ILP disambiguation + single SPARQL."""

import pytest

from repro.baselines import Deanna
from repro.rdf import IRI


@pytest.fixture(scope="module")
def deanna(kg, dictionary):
    return Deanna(kg, dictionary)


def answer_names(result):
    return sorted(
        term.local_name if isinstance(term, IRI) else str(term)
        for term in result.answers
    )


class TestDeannaAnswers:
    def test_simple_factoid(self, deanna):
        result = deanna.answer("Who is the mayor of Berlin?")
        assert answer_names(result) == ["Klaus_Wowereit"]

    def test_joint_disambiguation_resolves_philadelphia(self, deanna):
        # Coherence between the starring predicate and the film candidate
        # beats the more prominent city in the ILP.
        result = deanna.answer(
            "Who was married to an actor that played in Philadelphia?"
        )
        assert answer_names(result) == ["Melanie_Griffith"]

    def test_yes_no(self, deanna):
        result = deanna.answer("Is Michelle Obama the wife of Barack Obama?")
        assert result.boolean is True

    def test_wh_variable_reaches_literals_via_sparql(self, deanna):
        result = deanna.answer("What are the nicknames of San Francisco?")
        assert set(answer_names(result)) == {"The Golden City", "Fog City"}

    def test_ilp_explores_nodes(self, deanna):
        deanna.answer("Who is the mayor of Berlin?")
        assert deanna.last_ilp_nodes > 0

    def test_single_interpretation_committed(self, deanna):
        result = deanna.answer("Who is the mayor of Berlin?")
        # All emitted queries are orientations of ONE chosen interpretation.
        assert 1 <= len(result.sparql_queries) <= 2


class TestDeannaLimitations:
    """The failure modes that give our method its Table 8 edge."""

    def test_no_literal_argument_linking(self, deanna):
        result = deanna.answer("Who was called Scarface?")
        assert result.failure == "entity_linking"

    def test_no_demonym_support(self, deanna):
        result = deanna.answer("Give me all Argentine films.")
        assert result.failure == "relation_extraction"

    def test_no_common_noun_variable_fallback(self, deanna):
        result = deanna.answer("Give me all members of Prodigy.")
        assert not result.score_available if hasattr(result, "score_available") else True
        assert result.failure is not None

    def test_no_multi_hop_paths(self, deanna):
        # "player in the Premier League" needs the (team, league) path.
        result = deanna.answer("Who is the youngest player in the Premier League?")
        assert result.answers == []

    def test_no_recall_rules(self, deanna):
        # Without Rules 1–4, the partmod argument is never found.
        result = deanna.answer(
            "Give me all movies directed by Francis Ford Coppola."
        )
        assert result.failure == "relation_extraction"

    def test_understanding_includes_ilp_time(self, deanna):
        result = deanna.answer("Who is the mayor of Berlin?")
        assert result.understanding_time > 0


class TestTable8Shape:
    def test_deanna_answers_fewer_than_ganswer(self, kg, dictionary):
        """The headline comparison: 21 vs 32 right on the QALD set."""
        from repro.core import GAnswer
        from repro.datasets import qald_questions
        from repro.eval import evaluate_system

        questions = qald_questions()[:40]  # prefix keeps the test fast
        ours = evaluate_system(GAnswer(kg, dictionary), questions, "ours")
        theirs = evaluate_system(Deanna(kg, dictionary), questions, "deanna")
        assert ours.summary.right > theirs.summary.right
