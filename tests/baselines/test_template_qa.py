"""Tests for the template-based baseline."""

import pytest

from repro.baselines import TemplateQA
from repro.rdf import IRI


@pytest.fixture(scope="module")
def template(kg, dictionary):
    return TemplateQA(kg, dictionary)


def answer_names(result):
    return sorted(
        term.local_name if isinstance(term, IRI) else str(term)
        for term in result.answers
    )


class TestTemplates:
    def test_who_is_the_x_of_y(self, template):
        result = template.answer("Who is the mayor of Berlin?")
        assert answer_names(result) == ["Klaus_Wowereit"]

    def test_give_me_all_x_of_y(self, template):
        result = template.answer("Give me all members of Prodigy.")
        assert set(answer_names(result)) == {
            "Liam_Howlett", "Keith_Flint", "Maxim_(musician)",
        }

    def test_who_verb_entity(self, template):
        result = template.answer("Who founded Intel?")
        assert set(answer_names(result)) == {"Robert_Noyce", "Gordon_Moore"}

    def test_untemplated_question_fails(self, template):
        result = template.answer(
            "Who was married to an actor that played in Philadelphia?"
        )
        assert result.failure == "relation_extraction"
        assert result.answers == []

    def test_unknown_entity_fails(self, template):
        result = template.answer("Who is the mayor of Gotham?")
        assert result.failure in ("entity_linking", "no_match")

    def test_timings_recorded(self, template):
        result = template.answer("Who is the mayor of Berlin?")
        assert result.understanding_time >= 0
        assert result.evaluation_time >= 0
