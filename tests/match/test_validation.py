"""Tests for the Definition 3 match validator (negative cases)."""

import pytest

from repro.match import (
    CandidateSpace,
    EdgeCandidate,
    GraphMatch,
    QueryEdge,
    QueryVertex,
    SubgraphMatcher,
    VertexCandidate,
    validate_match,
)
from repro.rdf import IRI, KnowledgeGraph, RDF_TYPE, Triple, TripleStore
from repro.rdf.graph import forward_step


@pytest.fixture
def kg():
    store = TripleStore()
    store.add(Triple(IRI("v:a"), IRI("v:p"), IRI("v:b")))
    store.add(Triple(IRI("v:a"), RDF_TYPE, IRI("v:C")))
    return KnowledgeGraph(store)


@pytest.fixture
def space(kg):
    s = CandidateSpace()
    s.add_vertex(QueryVertex(0, candidates=[VertexCandidate(kg.id_of(IRI("v:a")), 0.9)]))
    s.add_vertex(QueryVertex(1, wildcard=True))
    s.add_edge(QueryEdge(0, 1, candidates=[
        EdgeCandidate((forward_step(kg.id_of(IRI("v:p"))),), 0.8)
    ]))
    return s


def valid_match(kg, space):
    (match,) = SubgraphMatcher(kg, space).all_matches()
    return match


class TestValidator:
    def test_real_match_is_valid(self, kg, space):
        assert validate_match(kg, space, valid_match(kg, space)) == []

    def test_wrong_node_detected(self, kg, space):
        match = valid_match(kg, space)
        b = kg.id_of(IRI("v:b"))
        forged = GraphMatch(
            bindings=((0, b), (1, b)),  # also non-injective
            vertex_confidences=match.vertex_confidences,
            edge_assignments=match.edge_assignments,
            score=match.score,
        )
        problems = validate_match(kg, space, forged)
        assert any("injective" in p for p in problems)
        assert any("not admitted" in p for p in problems)

    def test_wrong_score_detected(self, kg, space):
        match = valid_match(kg, space)
        forged = GraphMatch(
            bindings=match.bindings,
            vertex_confidences=match.vertex_confidences,
            edge_assignments=match.edge_assignments,
            score=match.score + 1.0,
        )
        assert any("Definition 6" in p for p in validate_match(kg, space, forged))

    def test_disconnected_edge_detected(self, kg, space):
        match = valid_match(kg, space)
        a = kg.id_of(IRI("v:a"))
        forged = GraphMatch(
            bindings=((0, a), (1, a + 999_999)),
            vertex_confidences=match.vertex_confidences,
            edge_assignments=match.edge_assignments,
            score=match.score,
        )
        problems = validate_match(kg, space, forged)
        assert problems  # unreachable binding must be flagged

    def test_missing_edge_assignment_detected(self, kg, space):
        match = valid_match(kg, space)
        forged = GraphMatch(
            bindings=match.bindings,
            vertex_confidences=match.vertex_confidences,
            edge_assignments=(),
            score=match.score,
        )
        assert any("no path assignment" in p for p in validate_match(kg, space, forged))

    def test_non_candidate_path_detected(self, kg, space):
        match = valid_match(kg, space)
        bogus_path = (forward_step(999),)
        forged = GraphMatch(
            bindings=match.bindings,
            vertex_confidences=match.vertex_confidences,
            edge_assignments=((0, bogus_path, 0.8),),
            score=match.score,
        )
        assert any("not a candidate" in p for p in validate_match(kg, space, forged))
