"""Tests for candidate spaces and the exploration matcher on the paper's
Figure 1/2 running example."""

import math

import pytest

from repro.match import (
    CandidateSpace,
    EdgeCandidate,
    GraphMatch,
    QueryEdge,
    QueryVertex,
    SubgraphMatcher,
    VertexCandidate,
)
from repro.rdf import IRI, KnowledgeGraph, RDF_TYPE, Triple, TripleStore
from repro.rdf.graph import backward_step, forward_step


def e(name):
    return IRI(f"ex:{name}")


@pytest.fixture(scope="module")
def kg():
    """The running example: who-married-actor-played-in-Philadelphia."""
    store = TripleStore()
    triples = [
        ("Antonio_Banderas", "spouse", "Melanie_Griffith"),
        ("Antonio_Banderas", "starring", "Philadelphia_(film)"),
        ("Tom_Hanks", "starring", "Philadelphia_(film)"),
        ("Aaron_McKie", "playForTeam", "Philadelphia_76ers"),
        ("Jonathan_Demme", "director", "Philadelphia_(film)"),
        ("Constitution", "signedIn", "Philadelphia"),
    ]
    for s, p, o in triples:
        store.add(Triple(e(s), e(p), e(o)))
    store.add(Triple(e("Antonio_Banderas"), RDF_TYPE, e("Actor")))
    store.add(Triple(e("Tom_Hanks"), RDF_TYPE, e("Actor")))
    store.add(Triple(e("Aaron_McKie"), RDF_TYPE, e("BasketballPlayer")))
    return KnowledgeGraph(store)


def nid(kg, name):
    return kg.id_of(e(name))


def pid(kg, name):
    return kg.id_of(e(name))


@pytest.fixture
def running_example_space(kg):
    """Q^S of Figure 2: who --be married to-- actor --play in-- Philadelphia."""
    space = CandidateSpace()
    space.add_vertex(QueryVertex(0, wildcard=True))  # "who"
    space.add_vertex(
        QueryVertex(
            1,
            candidates=[VertexCandidate(nid(kg, "Actor"), 0.9, is_class=True)],
        )
    )
    space.add_vertex(
        QueryVertex(
            2,
            candidates=[
                VertexCandidate(nid(kg, "Philadelphia"), 0.9),
                VertexCandidate(nid(kg, "Philadelphia_(film)"), 0.8),
                VertexCandidate(nid(kg, "Philadelphia_76ers"), 0.7),
            ],
        )
    )
    space.add_edge(
        QueryEdge(
            1, 0, candidates=[EdgeCandidate((forward_step(pid(kg, "spouse")),), 1.0)]
        )
    )
    space.add_edge(
        QueryEdge(
            1,
            2,
            candidates=[
                EdgeCandidate((forward_step(pid(kg, "starring")),), 0.9),
                EdgeCandidate((forward_step(pid(kg, "playForTeam")),), 0.8),
                EdgeCandidate((forward_step(pid(kg, "director")),), 0.5),
            ],
        )
    )
    return space


class TestCandidateSpace:
    def test_candidates_sorted_by_confidence(self, running_example_space):
        scores = [c.confidence for c in running_example_space.vertices[2].candidates]
        assert scores == sorted(scores, reverse=True)

    def test_connected(self, running_example_space):
        assert running_example_space.is_connected()

    def test_components_split(self, kg):
        space = CandidateSpace()
        space.add_vertex(QueryVertex(0, wildcard=True))
        space.add_vertex(QueryVertex(1, wildcard=True))
        assert not space.is_connected()
        assert len(space.components()) == 2

    def test_edge_requires_vertices(self):
        space = CandidateSpace()
        with pytest.raises(ValueError):
            space.add_edge(QueryEdge(0, 1))

    def test_has_empty_list(self, kg):
        space = CandidateSpace()
        space.add_vertex(QueryVertex(0, candidates=[]))
        assert space.has_empty_list()


class TestRunningExampleMatch:
    def test_unique_match_resolves_ambiguity(self, kg, running_example_space):
        matcher = SubgraphMatcher(kg, running_example_space)
        matches = matcher.all_matches()
        assert len(matches) == 1
        (match,) = matches
        # The answer is Melanie Griffith; "Philadelphia" resolved to the film.
        assert match.binding_of(0) == nid(kg, "Melanie_Griffith")
        assert match.binding_of(1) == nid(kg, "Antonio_Banderas")
        assert match.binding_of(2) == nid(kg, "Philadelphia_(film)")

    def test_score_is_sum_of_logs(self, kg, running_example_space):
        (match,) = SubgraphMatcher(kg, running_example_space).all_matches()
        expected = math.log(1.0) + math.log(0.9) + math.log(0.8) + math.log(1.0) + math.log(0.9)
        assert match.score == pytest.approx(expected)

    def test_hanks_excluded_by_spouse_edge(self, kg, running_example_space):
        # Tom Hanks starred in Philadelphia (film) but has no spouse edge,
        # so no match binds him.
        matches = SubgraphMatcher(kg, running_example_space).all_matches()
        assert all(m.binding_of(1) != nid(kg, "Tom_Hanks") for m in matches)

    def test_seeded_exploration_finds_same_match(self, kg, running_example_space):
        matcher = SubgraphMatcher(kg, running_example_space)
        seed = VertexCandidate(nid(kg, "Philadelphia_(film)"), 0.8)
        matches = matcher.matches_from_seed(2, seed)
        assert len(matches) == 1
        assert matches[0].binding_of(0) == nid(kg, "Melanie_Griffith")

    def test_seeding_false_candidate_finds_nothing(self, kg, running_example_space):
        matcher = SubgraphMatcher(kg, running_example_space)
        seed = VertexCandidate(nid(kg, "Philadelphia_76ers"), 0.7)
        assert matcher.matches_from_seed(2, seed) == []

    def test_class_seed_explores_instances(self, kg, running_example_space):
        matcher = SubgraphMatcher(kg, running_example_space)
        seed = VertexCandidate(nid(kg, "Actor"), 0.9, is_class=True)
        matches = matcher.matches_from_seed(1, seed)
        assert len(matches) == 1
        assert matches[0].binding_of(1) == nid(kg, "Antonio_Banderas")


class TestMatchSemantics:
    def test_edge_orientation_both_ways(self, kg):
        # Query edge direction opposite to data direction still matches via
        # the signed path (Definition 3 condition 3).
        space = CandidateSpace()
        space.add_vertex(
            QueryVertex(0, candidates=[VertexCandidate(nid(kg, "Melanie_Griffith"), 1.0)])
        )
        space.add_vertex(QueryVertex(1, wildcard=True))
        space.add_edge(
            QueryEdge(0, 1, candidates=[EdgeCandidate((backward_step(pid(kg, "spouse")),), 1.0)])
        )
        matches = SubgraphMatcher(kg, space).all_matches()
        assert [m.binding_of(1) for m in matches] == [nid(kg, "Antonio_Banderas")]

    def test_injectivity(self, kg):
        # Both wildcard endpoints of a spouse edge cannot bind the same node.
        space = CandidateSpace()
        space.add_vertex(QueryVertex(0, wildcard=True))
        space.add_vertex(QueryVertex(1, wildcard=True))
        space.add_edge(
            QueryEdge(0, 1, candidates=[EdgeCandidate((forward_step(pid(kg, "spouse")),), 1.0)])
        )
        for match in SubgraphMatcher(kg, space).all_matches():
            assert match.binding_of(0) != match.binding_of(1)

    def test_multi_hop_path_edge(self, kg):
        # Griffith --(spouse⁻¹ · starring)--> film: a length-2 path edge.
        space = CandidateSpace()
        space.add_vertex(
            QueryVertex(0, candidates=[VertexCandidate(nid(kg, "Melanie_Griffith"), 1.0)])
        )
        space.add_vertex(QueryVertex(1, wildcard=True))
        path = (backward_step(pid(kg, "spouse")), forward_step(pid(kg, "starring")))
        space.add_edge(QueryEdge(0, 1, candidates=[EdgeCandidate(path, 0.9)]))
        matches = SubgraphMatcher(kg, space).all_matches()
        assert [m.binding_of(1) for m in matches] == [nid(kg, "Philadelphia_(film)")]

    def test_best_edge_path_chosen_for_score(self, kg):
        # Two candidate paths both connect; the higher-confidence one is
        # used for the score.
        space = CandidateSpace()
        space.add_vertex(
            QueryVertex(0, candidates=[VertexCandidate(nid(kg, "Antonio_Banderas"), 1.0)])
        )
        space.add_vertex(
            QueryVertex(1, candidates=[VertexCandidate(nid(kg, "Philadelphia_(film)"), 1.0)])
        )
        starring = (forward_step(pid(kg, "starring")),)
        space.add_edge(
            QueryEdge(
                0, 1,
                candidates=[
                    EdgeCandidate(starring, 0.9),
                    EdgeCandidate(starring, 0.2),
                ],
            )
        )
        (match,) = SubgraphMatcher(kg, space).all_matches()
        assert match.score == pytest.approx(math.log(0.9))

    def test_no_candidates_no_match(self, kg):
        space = CandidateSpace()
        space.add_vertex(QueryVertex(0, candidates=[]))
        space.add_vertex(QueryVertex(1, wildcard=True))
        space.add_edge(
            QueryEdge(0, 1, candidates=[EdgeCandidate((forward_step(pid(kg, "spouse")),), 1.0)])
        )
        assert SubgraphMatcher(kg, space).all_matches() == []

    def test_max_matches_cap(self, kg):
        space = CandidateSpace()
        space.add_vertex(QueryVertex(0, wildcard=True))
        space.add_vertex(QueryVertex(1, wildcard=True))
        # Any predicate at all — bind every edge in the graph.
        candidates = [
            EdgeCandidate((forward_step(p),), 1.0)
            for p in kg.store.predicate_ids()
        ]
        space.add_edge(QueryEdge(0, 1, candidates=candidates))
        matcher = SubgraphMatcher(kg, space, max_matches=2)
        assert len(matcher.all_matches()) <= 2 * len(list(kg.store.node_ids()))


class TestPruning:
    def test_prunes_impossible_candidate(self, kg, running_example_space):
        from repro.match import neighborhood_prune

        removed = neighborhood_prune(kg, running_example_space)
        assert removed >= 1
        surviving = {
            c.node_id for c in running_example_space.vertices[2].candidates
        }
        # Plain Philadelphia (the city) has no starring/playForTeam/director
        # incident edge → pruned (u₅ in Figure 2).
        assert nid(kg, "Philadelphia") not in surviving
        assert nid(kg, "Philadelphia_(film)") in surviving

    def test_pruning_preserves_matches(self, kg, running_example_space):
        from repro.match import neighborhood_prune
        import copy

        unpruned = SubgraphMatcher(kg, copy.deepcopy(running_example_space)).all_matches()
        neighborhood_prune(kg, running_example_space)
        pruned = SubgraphMatcher(kg, running_example_space).all_matches()
        assert {m.key() for m in pruned} == {m.key() for m in unpruned}

    def test_wildcards_not_pruned(self, kg, running_example_space):
        from repro.match import neighborhood_prune

        neighborhood_prune(kg, running_example_space)
        assert running_example_space.vertices[0].wildcard


class TestSelfLoopGuard:
    def test_self_loop_edge_rejected(self, kg):
        space = CandidateSpace()
        space.add_vertex(QueryVertex(0, wildcard=True))
        with pytest.raises(ValueError):
            space.add_edge(QueryEdge(0, 0, candidates=[]))

    def test_self_loop_query_not_compilable(self, kg):
        from repro.sparql import parse_query
        from repro.sparql.graph_executor import is_compilable

        query = parse_query("SELECT ?x WHERE { ?x <ex:knows> ?x }")
        assert is_compilable(query) is not None
