"""Property-based tests: matcher output always satisfies Definition 3.

Random small graphs and random candidate spaces are generated; every
match the matcher produces must pass the independent validator, pruning
must never change the match set, and the TA search must agree with
exhaustive enumeration on the top-k scores.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.top_k import TopKSearch
from repro.match import (
    CandidateSpace,
    EdgeCandidate,
    QueryEdge,
    QueryVertex,
    SubgraphMatcher,
    VertexCandidate,
    neighborhood_prune,
    validate_match,
)
from repro.rdf import IRI, KnowledgeGraph, Triple, TripleStore
from repro.rdf.graph import backward_step, forward_step

_N_NODES = 8
_N_PREDICATES = 3


@st.composite
def graph_and_space(draw):
    """A random KG plus a random connected 2–3 vertex candidate space."""
    edge_specs = draw(
        st.lists(
            st.tuples(
                st.integers(0, _N_NODES - 1),
                st.integers(0, _N_PREDICATES - 1),
                st.integers(0, _N_NODES - 1),
            ),
            min_size=3,
            max_size=18,
        )
    )
    store = TripleStore()
    for s, p, o in edge_specs:
        if s != o:
            store.add(Triple(IRI(f"g:n{s}"), IRI(f"g:p{p}"), IRI(f"g:n{o}")))
    # Ensure at least one triple exists.
    store.add(Triple(IRI("g:n0"), IRI("g:p0"), IRI("g:n1")))
    kg = KnowledgeGraph(store)

    node_ids = sorted(store.node_ids())
    pred_ids = sorted(store.predicate_ids())

    def vertex(vertex_id):
        wildcard = draw(st.booleans())
        if wildcard:
            return QueryVertex(vertex_id, wildcard=True)
        candidates = draw(
            st.lists(
                st.builds(
                    VertexCandidate,
                    st.sampled_from(node_ids),
                    st.floats(0.1, 1.0),
                    st.just(False),
                ),
                min_size=1,
                max_size=4,
            )
        )
        return QueryVertex(vertex_id, candidates=candidates)

    def edge(source, target):
        candidates = draw(
            st.lists(
                st.builds(
                    EdgeCandidate,
                    st.tuples(
                        st.sampled_from(
                            [forward_step(p) for p in pred_ids]
                            + [backward_step(p) for p in pred_ids]
                        )
                    ),
                    st.floats(0.1, 1.0),
                ),
                min_size=1,
                max_size=3,
            )
        )
        return QueryEdge(source, target, candidates=candidates)

    space = CandidateSpace()
    n_vertices = draw(st.integers(2, 3))
    for vertex_id in range(n_vertices):
        space.add_vertex(vertex(vertex_id))
    # A path query graph is always connected.
    for vertex_id in range(n_vertices - 1):
        space.add_edge(edge(vertex_id, vertex_id + 1))
    return kg, space


@settings(max_examples=60, deadline=None)
@given(graph_and_space())
def test_every_match_satisfies_definition3(setup):
    kg, space = setup
    for match in SubgraphMatcher(kg, space, max_matches=300).all_matches():
        assert validate_match(kg, space, match) == []


@settings(max_examples=60, deadline=None)
@given(graph_and_space())
def test_pruning_never_changes_match_set(setup):
    import copy

    kg, space = setup
    before = {
        m.key() for m in SubgraphMatcher(kg, copy.deepcopy(space)).all_matches()
    }
    neighborhood_prune(kg, space)
    after = {m.key() for m in SubgraphMatcher(kg, space).all_matches()}
    assert before == after


@settings(max_examples=40, deadline=None)
@given(graph_and_space(), st.integers(1, 4))
def test_ta_topk_equals_exhaustive_topk(setup, k):
    import copy

    kg, space = setup
    ta = TopKSearch(kg, k=k, use_ta=True).search(copy.deepcopy(space))
    full = TopKSearch(kg, k=k, use_ta=False).search(copy.deepcopy(space))
    assert [round(m.score, 9) for m in ta.matches] == [
        round(m.score, 9) for m in full.matches
    ]
    assert {m.key() for m in ta.matches} == {m.key() for m in full.matches}


@settings(max_examples=40, deadline=None)
@given(graph_and_space())
def test_matches_sorted_and_deduplicated(setup):
    kg, space = setup
    matches = SubgraphMatcher(kg, space, max_matches=300).all_matches()
    scores = [m.score for m in matches]
    assert scores == sorted(scores, reverse=True)
    keys = [m.key() for m in matches]
    assert len(keys) == len(set(keys))
