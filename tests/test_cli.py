"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestAsk:
    def test_ask_answers(self, capsys):
        rc = main(["ask", "Who is the mayor of Berlin?"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "res:Klaus_Wowereit" in captured.out

    def test_ask_failure_exit_code(self, capsys):
        rc = main(["ask", "Give me all launch pads operated by NASA."])
        captured = capsys.readouterr()
        assert rc == 1
        assert "no answer" in captured.err

    def test_ask_with_sparql(self, capsys):
        rc = main(["ask", "--sparql", "Who is the mayor of Berlin?"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "SELECT DISTINCT" in captured.out

    def test_ask_yes_no(self, capsys):
        main(["ask", "Is Michelle Obama the wife of Barack Obama?"])
        assert "yes" in capsys.readouterr().out

    def test_aggregation_extension_flag(self, capsys):
        rc = main(
            ["--aggregation", "ask", "Who is the youngest player in the Premier League?"]
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert captured.out.strip() == "res:Raheem_Sterling"


class TestTrace:
    def test_trace_prints_span_tree(self, capsys):
        rc = main(["--trace", "ask", "Who is the mayor of Berlin?"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "res:Klaus_Wowereit" in captured.out
        assert "-- trace:" in captured.err
        for stage in ("answer", "understanding", "parse", "top_k.search"):
            assert stage in captured.err

    def test_trace_json_to_stdout(self, capsys):
        import json

        rc = main(["--trace-json", "-", "ask", "Who is the mayor of Berlin?"])
        captured = capsys.readouterr()
        assert rc == 0
        payload = json.loads(captured.out.split("\n", 1)[1])
        assert payload["spans"][0]["name"] == "answer"
        assert payload["metrics"]["counters"]["top_k.seeds_explored"] >= 1

    def test_trace_json_to_file(self, capsys, tmp_path):
        import json

        out = tmp_path / "trace.json"
        rc = main(["--trace-json", str(out), "ask", "Who is the mayor of Berlin?"])
        capsys.readouterr()
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["spans"][0]["name"] == "answer"

    def test_untraced_run_installs_no_tracer(self, capsys):
        from repro import obs

        main(["ask", "Who is the mayor of Berlin?"])
        capsys.readouterr()
        assert obs.get_tracer() is obs.NOOP


class TestSparql:
    def test_select(self, capsys):
        rc = main(["sparql", "SELECT ?x WHERE { <res:Berlin> <ont:mayor> ?x }"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "res:Klaus_Wowereit" in captured.out

    def test_ask_form(self, capsys):
        main(["sparql", "ASK { <res:Berlin> <ont:mayor> <res:Klaus_Wowereit> }"])
        assert capsys.readouterr().out.strip() == "yes"

    def test_count_form(self, capsys):
        main(["sparql", "SELECT COUNT(?m) WHERE { ?p <ont:starring> ?m }"])
        assert capsys.readouterr().out.strip().isdigit()


class TestDictionary:
    def test_listing(self, capsys):
        rc = main(["dictionary"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "spouse" in captured.out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_k_option(self):
        args = build_parser().parse_args(["--k", "5", "ask", "q"])
        assert args.k == 5


class TestShell:
    def test_shell_loop(self, capsys, monkeypatch):
        inputs = iter(["Who is the mayor of Berlin?", ""])
        monkeypatch.setattr("builtins.input", lambda prompt="": next(inputs))
        rc = main(["shell"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "res:Klaus_Wowereit" in captured.out

    def test_shell_eof_exits(self, capsys, monkeypatch):
        def raise_eof(prompt=""):
            raise EOFError

        monkeypatch.setattr("builtins.input", raise_eof)
        assert main(["shell"]) == 0


class TestEval:
    def test_eval_summary(self, capsys):
        rc = main(["eval", "--failures"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "right" in captured.out
        assert "aggregation" in captured.out
