"""Metrics registry: counter math, snapshot shape, cross-registry merge."""

from repro.obs.metrics import Metrics, merge_snapshots


def _registry(counters: dict, observations: dict) -> Metrics:
    metrics = Metrics()
    for name, amount in counters.items():
        metrics.incr(name, amount)
    for name, values in observations.items():
        for value in values:
            metrics.observe(name, value)
    return metrics


class TestMergeSnapshots:
    def test_counters_sum(self):
        merged = merge_snapshots([
            _registry({"serve.requests": 3, "serve.errors": 1}, {}).snapshot(),
            _registry({"serve.requests": 4}, {}).snapshot(),
        ])
        assert merged["counters"] == {"serve.errors": 1, "serve.requests": 7}

    def test_histograms_combine_exactly(self):
        merged = merge_snapshots([
            _registry({}, {"latency": [10.0, 20.0]}).snapshot(),
            _registry({}, {"latency": [5.0, 45.0, 20.0]}).snapshot(),
        ])
        summary = merged["histograms"]["latency"]
        assert summary["count"] == 5
        assert summary["total"] == 100.0
        assert summary["min"] == 5.0
        assert summary["max"] == 45.0
        assert summary["mean"] == 20.0

    def test_merge_matches_single_registry(self):
        """Merging per-worker snapshots gives the same numbers as one
        registry that saw all the traffic — the aggregation invariant."""
        combined = _registry(
            {"a": 5, "b": 2}, {"h": [1.0, 2.0, 3.0, 4.0]}
        ).snapshot()
        split = merge_snapshots([
            _registry({"a": 2, "b": 2}, {"h": [1.0, 4.0]}).snapshot(),
            _registry({"a": 3}, {"h": [2.0, 3.0]}).snapshot(),
        ])
        assert split["counters"] == combined["counters"]
        assert split["histograms"] == combined["histograms"]

    def test_disjoint_names_and_empty_input(self):
        assert merge_snapshots([]) == {"counters": {}, "histograms": {}}
        merged = merge_snapshots([
            _registry({"only.left": 1}, {"left.h": [1.0]}).snapshot(),
            _registry({"only.right": 2}, {}).snapshot(),
        ])
        assert merged["counters"] == {"only.left": 1, "only.right": 2}
        assert list(merged["histograms"]) == ["left.h"]

    def test_merge_does_not_mutate_inputs(self):
        first = _registry({}, {"h": [1.0]}).snapshot()
        second = _registry({}, {"h": [9.0]}).snapshot()
        before = dict(first["histograms"]["h"])
        merge_snapshots([first, second])
        assert first["histograms"]["h"] == before
