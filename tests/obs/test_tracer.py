"""Unit tests for the observability layer: spans, metrics, no-op defaults."""

import json

import pytest

from repro import obs
from repro.obs import Metrics, NoopTracer, Tracer


class FakeClock:
    """Deterministic monotonic clock: advances by ``step`` per read."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestTracer:
    def test_spans_nest_by_with_block(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner_a"):
                pass
            with tracer.span("inner_b"):
                pass
        assert [root.name for root in tracer.roots] == ["outer"]
        outer = tracer.roots[0]
        assert [child.name for child in outer.children] == ["inner_a", "inner_b"]
        assert outer.children[0].children == []

    def test_durations_from_injected_clock(self):
        tracer = Tracer(clock=FakeClock(step=0.5))
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner = tracer.roots[0].children[0]
        # Clock reads: outer start 0.0, inner start 0.5, inner end 1.0,
        # outer end 1.5.
        assert inner.start == 0.5
        assert inner.duration == pytest.approx(0.5)
        assert tracer.roots[0].duration == pytest.approx(1.5)

    def test_attributes_at_open_and_via_set(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("work", size=3) as span:
            span.set(matches=7)
        assert tracer.roots[0].attributes == {"size": 3, "matches": 7}

    def test_span_closed_when_body_raises(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                raise RuntimeError("boom")
        assert tracer.roots[0].end is not None
        # The stack unwound: a new span is a root again, not a child.
        with tracer.span("next"):
            pass
        assert [root.name for root in tracer.roots] == ["outer", "next"]

    def test_find_and_walk(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        root = tracer.roots[0]
        assert root.find("c").name == "c"
        assert root.find("missing") is None
        assert [span.name for span in root.walk()] == ["a", "b", "c"]

    def test_to_dict_and_json(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("stage", label="x"):
            pass
        tracer.metrics.incr("widgets", 3)
        payload = json.loads(tracer.to_json())
        assert payload["spans"][0]["name"] == "stage"
        assert payload["spans"][0]["attributes"] == {"label": "x"}
        assert payload["spans"][0]["duration_s"] == pytest.approx(1.0)
        assert payload["metrics"]["counters"] == {"widgets": 3}

    def test_summary_aggregates_by_name(self):
        tracer = Tracer(clock=FakeClock())
        for _ in range(3):
            with tracer.span("question"):
                with tracer.span("understanding"):
                    pass
        summary = tracer.summary()
        assert summary["spans"]["question"]["count"] == 3
        assert summary["spans"]["understanding"]["count"] == 3
        assert summary["spans"]["question"]["total_s"] == pytest.approx(9.0)
        assert summary["spans"]["question"]["mean_s"] == pytest.approx(3.0)

    def test_render_tree_shape(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("answer", question="who?"):
            with tracer.span("understanding"):
                pass
            with tracer.span("evaluation"):
                pass
        rendered = tracer.render()
        lines = rendered.splitlines()
        assert lines[0].startswith("answer")
        assert "question='who?'" in lines[0]
        assert lines[1].startswith("├─ understanding")
        assert lines[2].startswith("└─ evaluation")

    def test_reset(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("x"):
            pass
        tracer.metrics.incr("n")
        tracer.reset()
        assert tracer.roots == []
        assert tracer.metrics.counters == {}


class TestMetrics:
    def test_counters_accumulate(self):
        metrics = Metrics()
        metrics.incr("seeds")
        metrics.incr("seeds", 4)
        assert metrics.counter("seeds") == 5
        assert metrics.counter("missing") == 0

    def test_histogram_snapshot(self):
        metrics = Metrics()
        for value in (1, 2, 3):
            metrics.observe("frontier", value)
        snap = metrics.snapshot()["histograms"]["frontier"]
        assert snap == {"count": 3, "min": 1, "max": 3, "mean": 2.0, "total": 6}


class TestNoop:
    def test_noop_records_no_spans_or_metrics(self):
        tracer = NoopTracer(clock=FakeClock())
        with tracer.span("anything", attr=1) as span:
            span.set(more=2)
            tracer.metrics.incr("counter", 5)
            tracer.metrics.observe("hist", 1.0)
        assert tracer.roots == ()
        assert tracer.metrics.snapshot() == {"counters": {}, "histograms": {}}
        assert tracer.summary() == {
            "spans": {},
            "metrics": {"counters": {}, "histograms": {}},
        }
        assert tracer.render() == ""

    def test_noop_span_still_measures_duration(self):
        # The pipeline's coarse stage timings read span.duration even with
        # tracing off, so the no-op span must still clock itself.
        tracer = NoopTracer(clock=FakeClock(step=2.0))
        with tracer.span("stage") as span:
            pass
        assert span.duration == pytest.approx(2.0)


class TestGlobalDefault:
    def test_default_is_noop(self):
        assert obs.get_tracer() is obs.NOOP
        assert obs.get_tracer().enabled is False

    def test_set_and_restore(self):
        tracer = Tracer()
        previous = obs.set_tracer(tracer)
        try:
            assert obs.get_tracer() is tracer
        finally:
            obs.set_tracer(previous)
        assert obs.get_tracer() is previous

    def test_use_tracer_scopes_installation(self):
        tracer = Tracer()
        with obs.use_tracer(tracer) as active:
            assert active is tracer
            assert obs.get_tracer() is tracer
        assert obs.get_tracer() is obs.NOOP

    def test_set_tracer_none_reinstalls_noop(self):
        previous = obs.set_tracer(None)
        try:
            assert obs.get_tracer() is obs.NOOP
        finally:
            obs.set_tracer(previous)
