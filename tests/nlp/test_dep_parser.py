"""Tests for the rule-based dependency parser.

Each test pins the dependency structure a downstream algorithm relies on:
relation-phrase embeddings need connected subtrees, argument finding needs
the subject/object-like edge labels of Section 4.1.2.
"""

import pytest

from repro.exceptions import ParseError
from repro.nlp import parse_question


def edge_set(tree):
    return {(head.lower, rel, dep.lower) for head, rel, dep in tree.edges()}


def node(tree, word):
    nodes = tree.find_nodes(word=word)
    assert nodes, f"no node for {word!r}"
    return nodes[0]


class TestRunningExample:
    """Figure 5 of the paper: 'Who was married to an actor that played in
    Philadelphia?'"""

    @pytest.fixture(scope="class")
    def tree(self):
        return parse_question("Who was married to an actor that played in Philadelphia?")

    def test_root_is_married(self, tree):
        assert tree.root.lower == "married"

    def test_passive_subject(self, tree):
        assert ("married", "nsubjpass", "who") in edge_set(tree)

    def test_auxpass(self, tree):
        assert ("married", "auxpass", "was") in edge_set(tree)

    def test_pp_attachment(self, tree):
        edges = edge_set(tree)
        assert ("married", "prep", "to") in edges
        assert ("to", "pobj", "actor") in edges

    def test_relative_clause(self, tree):
        edges = edge_set(tree)
        assert ("actor", "rcmod", "played") in edges
        assert ("played", "nsubj", "that") in edges
        assert ("played", "prep", "in") in edges
        assert ("in", "pobj", "philadelphia") in edges

    def test_tree_is_valid(self, tree):
        tree.validate()  # should not raise

    def test_spans_all_non_punct_tokens(self, tree):
        assert len(tree) == 10  # everything except the question mark


class TestCopularQuestions:
    def test_mayor_of_berlin(self):
        tree = parse_question("Who is the mayor of Berlin?")
        edges = edge_set(tree)
        assert tree.root.lower == "mayor"
        assert ("mayor", "nsubj", "who") in edges
        assert ("mayor", "cop", "is") in edges
        assert ("mayor", "prep", "of") in edges
        assert ("of", "pobj", "berlin") in edges

    def test_yes_no_copular(self):
        tree = parse_question("Is Michelle Obama the wife of Barack Obama?")
        edges = edge_set(tree)
        assert tree.root.lower == "wife"
        assert ("wife", "nsubj", "obama") in edges
        assert ("of", "pobj", "obama") in edges

    def test_how_tall(self):
        tree = parse_question("How tall is Michael Jordan?")
        edges = edge_set(tree)
        assert tree.root.lower == "tall"
        assert ("tall", "advmod", "how") in edges
        assert ("tall", "nsubj", "jordan") in edges

    def test_declarative_order_copular(self):
        tree = parse_question("Sean Parnell is the governor of which U.S. state?")
        edges = edge_set(tree)
        assert tree.root.lower == "governor"
        assert ("governor", "nsubj", "parnell") in edges
        assert ("of", "pobj", "state") in edges

    def test_superlative_copular(self):
        tree = parse_question("What is the largest city in Australia?")
        edges = edge_set(tree)
        assert tree.root.lower == "city"
        assert ("city", "amod", "largest") in edges
        assert ("in", "pobj", "australia") in edges


class TestInversionAndFronting:
    def test_fronted_pp(self):
        tree = parse_question("In which movies did Antonio Banderas star?")
        edges = edge_set(tree)
        assert tree.root.lower == "star"
        assert ("star", "prep", "in") in edges
        assert ("in", "pobj", "movies") in edges
        assert ("star", "nsubj", "banderas") in edges
        assert ("star", "aux", "did") in edges

    def test_stranded_preposition(self):
        tree = parse_question("Which cities does the Weser flow through?")
        edges = edge_set(tree)
        assert ("flow", "prep", "through") in edges
        assert ("through", "pobj", "cities") in edges
        assert ("flow", "nsubj", "weser") in edges

    def test_fronted_object(self):
        tree = parse_question("Which river does the Brooklyn Bridge cross?")
        edges = edge_set(tree)
        assert ("cross", "dobj", "river") in edges
        assert ("cross", "nsubj", "bridge") in edges

    def test_wh_adverb(self):
        tree = parse_question("When did Michael Jackson die?")
        edges = edge_set(tree)
        assert tree.root.lower == "die"
        assert ("die", "advmod", "when") in edges
        assert ("die", "nsubj", "jackson") in edges

    def test_inverted_passive(self):
        tree = parse_question("In which city was the former Dutch queen Juliana buried?")
        edges = edge_set(tree)
        assert tree.root.lower == "buried"
        assert ("buried", "nsubjpass", "juliana") in edges
        assert ("in", "pobj", "city") in edges


class TestImperatives:
    def test_give_me(self):
        tree = parse_question("Give me all movies directed by Francis Ford Coppola.")
        edges = edge_set(tree)
        assert tree.root.lower == "give"
        assert ("give", "iobj", "me") in edges
        assert ("give", "dobj", "movies") in edges
        assert ("movies", "partmod", "directed") in edges
        assert ("directed", "prep", "by") in edges
        assert ("by", "pobj", "coppola") in edges

    def test_list_imperative(self):
        tree = parse_question("List the children of Margaret Thatcher.")
        edges = edge_set(tree)
        assert tree.root.lower == "list"
        assert ("list", "dobj", "children") in edges
        assert ("of", "pobj", "thatcher") in edges


class TestRelativeClauses:
    def test_coordinated_relative(self):
        tree = parse_question(
            "Give me all people that were born in Vienna and died in Berlin."
        )
        edges = edge_set(tree)
        assert ("people", "rcmod", "born") in edges
        assert ("born", "nsubjpass", "that") in edges
        assert ("born", "conj", "died") in edges
        assert ("born", "cc", "and") in edges
        died = node(tree, "died")
        preps = [c for c in died.children if c.deprel == "prep"]
        assert preps and any(g.lower == "berlin" for p in preps for g in p.children)

    def test_reduced_passive_relative(self):
        tree = parse_question("Give me all launch pads operated by NASA.")
        edges = edge_set(tree)
        assert ("pads", "partmod", "operated") in edges
        assert ("by", "pobj", "nasa") in edges

    def test_subject_relative(self):
        tree = parse_question("Give me all cars that are produced in Germany.")
        edges = edge_set(tree)
        assert ("cars", "rcmod", "produced") in edges
        assert ("produced", "nsubjpass", "that") in edges


class TestNounPhrases:
    def test_compound_proper_names(self):
        tree = parse_question("Who was the successor of John F. Kennedy?")
        kennedy = node(tree, "kennedy")
        modifiers = {c.lower for c in kennedy.children if c.deprel == "nn"}
        assert modifiers == {"john", "f."}

    def test_phrase_extraction(self):
        tree = parse_question("Who was the successor of John F. Kennedy?")
        assert node(tree, "kennedy").phrase() == "John F. Kennedy"

    def test_phrase_excludes_determiner(self):
        tree = parse_question("Who is the mayor of Berlin?")
        assert node(tree, "mayor").phrase() == "mayor"

    def test_title_apposition(self):
        tree = parse_question("Who wrote the book The Pillars of the Earth?")
        edges = edge_set(tree)
        assert ("wrote", "dobj", "book") in edges
        assert ("book", "appos", "pillars") in edges


class TestStructure:
    def test_every_tree_validates(self):
        questions = [
            "Who founded Intel?",
            "What are the nicknames of San Francisco?",
            "Give me all Argentine films.",
            "Who produces Orangina?",
            "Which countries are connected by the Rhine?",
            "How many students does the Free University in Amsterdam have?",
        ]
        for question in questions:
            parse_question(question).validate()

    def test_single_word_question(self):
        tree = parse_question("Who?")
        assert tree.root.lower == "who"

    def test_empty_question_raises(self):
        with pytest.raises(ParseError):
            parse_question("?")

    def test_node_at(self):
        tree = parse_question("Who founded Intel?")
        assert tree.node_at(0).lower == "who"
        assert tree.node_at(99) is None

    def test_find_nodes_by_deprel(self):
        tree = parse_question("Who founded Intel?")
        assert [n.lower for n in tree.find_nodes(deprel="nsubj")] == ["who"]
