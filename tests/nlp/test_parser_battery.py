"""Regression battery: every benchmark question parses into a valid tree.

A broad, cheap safety net — any parser change that breaks a benchmark
question's tree structure fails here before it shows up as a mysterious
end-to-end regression.
"""

import pytest

from repro.datasets import qald_questions, yago_questions
from repro.datasets.qald import qald_train_questions
from repro.nlp import parse_question

_ALL_QUESTIONS = (
    [q.text for q in qald_questions()]
    + [q.text for q in qald_train_questions()]
    + [q.text for q in yago_questions()]
)


@pytest.mark.parametrize("question", _ALL_QUESTIONS)
def test_question_parses_to_valid_tree(question):
    tree = parse_question(question)
    tree.validate()  # single root, acyclic, spanning
    # The root must be a content word, never punctuation or a bare
    # preposition/auxiliary-only analysis.
    assert tree.root.pos not in (".", ",", "POS")
    # Every non-root node is reachable and has a labelled relation.
    for node in tree.nodes:
        if node is not tree.root:
            assert node.head is not None
            assert node.deprel


def test_parsing_is_deterministic():
    question = "Who was married to an actor that played in Philadelphia?"
    first = parse_question(question).to_text()
    second = parse_question(question).to_text()
    assert first == second


def test_battery_size():
    # 99 test + 30 train + 20 yago questions.
    assert len(_ALL_QUESTIONS) == 149
