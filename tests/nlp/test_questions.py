"""Tests for question-type and aggregation classification."""

from repro.nlp import AggregationKind, QuestionType, analyze_question


class TestQuestionType:
    def test_who_entity(self):
        assert analyze_question("Who is the mayor of Berlin?").question_type is QuestionType.ENTITY

    def test_which_entity(self):
        analysis = analyze_question("Which cities does the Weser flow through?")
        assert analysis.question_type is QuestionType.ENTITY
        assert analysis.wh_word == "which"

    def test_where_place(self):
        assert analyze_question("Where was Bach born?").question_type is QuestionType.PLACE

    def test_when_time(self):
        assert analyze_question("When did Michael Jackson die?").question_type is QuestionType.TIME

    def test_how_quantity(self):
        assert analyze_question("How tall is Michael Jordan?").question_type is QuestionType.QUANTITY

    def test_yesno(self):
        analysis = analyze_question("Is Michelle Obama the wife of Barack Obama?")
        assert analysis.question_type is QuestionType.YESNO
        assert analysis.wh_word is None

    def test_did_yesno(self):
        assert analyze_question("Did Tesla win a Nobel prize?").question_type is QuestionType.YESNO

    def test_imperative_list(self):
        assert analyze_question("Give me all members of Prodigy.").question_type is QuestionType.LIST

    def test_list_imperative(self):
        assert analyze_question("List the children of Margaret Thatcher.").question_type is QuestionType.LIST


class TestAggregation:
    def test_superlative(self):
        analysis = analyze_question("Who is the youngest player in the Premier League?")
        assert analysis.aggregation is AggregationKind.SUPERLATIVE
        assert analysis.is_aggregation

    def test_largest(self):
        analysis = analyze_question("What is the largest city in Australia?")
        assert analysis.aggregation is AggregationKind.SUPERLATIVE

    def test_how_many_count(self):
        analysis = analyze_question("How many students does the university have?")
        assert analysis.aggregation is AggregationKind.COUNT

    def test_plain_question_no_aggregation(self):
        analysis = analyze_question("Who is the mayor of Berlin?")
        assert analysis.aggregation is AggregationKind.NONE
        assert not analysis.is_aggregation
