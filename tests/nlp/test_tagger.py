"""Tests for the POS tagger."""

import pytest

from repro.nlp.tagger import tag


def tags_of(question):
    return {t.text: t.pos for t in tag(question)}


def pos_sequence(question):
    return [(t.text, t.pos) for t in tag(question) if t.pos not in (".", ",")]


class TestClosedClasses:
    def test_wh_words(self):
        tags = tags_of("Who knows what is where and when?")
        assert tags["Who"] == "WP"
        assert tags["what"] == "WP"
        assert tags["where"] == "WRB"
        assert tags["when"] == "WRB"

    def test_which_is_wdt(self):
        assert tags_of("Which city is big?")["Which"] == "WDT"

    def test_determiners_prepositions(self):
        tags = tags_of("the mayor of a city in Germany")
        assert tags["the"] == "DT"
        assert tags["of"] == "IN"
        assert tags["a"] == "DT"
        assert tags["in"] == "IN"

    def test_be_forms(self):
        tags = tags_of("Who is he and who was she?")
        assert tags["is"] == "VBZ"
        assert tags["was"] == "VBD"

    def test_numbers(self):
        assert tags_of("He has 3 children")["3"] == "CD"


class TestOpenClasses:
    def test_unknown_capitalized_is_nnp(self):
        tags = tags_of("Who developed Minecraft?")
        assert tags["Minecraft"] == "NNP"

    def test_sentence_initial_known_word_not_nnp(self):
        assert tags_of("Give me all movies.")["Give"] == "VB"

    def test_domain_nouns(self):
        tags = tags_of("the mayor and the governor")
        assert tags["mayor"] == "NN"
        assert tags["governor"] == "NN"

    def test_plural_of_known_noun(self):
        assert tags_of("all the movies")["movies"] == "NNS"

    def test_irregular_plural(self):
        assert tags_of("the children of Margaret")["children"] == "NNS"

    def test_superlative(self):
        assert tags_of("the youngest player")["youngest"] == "JJS"

    def test_verb_inflections(self):
        tags = tags_of("he produces and directed")
        assert tags["produces"] == "VBZ"
        assert tags["directed"] == "VBD"

    def test_suffix_fallback_adverb(self):
        assert tags_of("he sings beautifully")["beautifully"] == "RB"


class TestContextualRules:
    def test_that_relative_pronoun(self):
        tags = tags_of("an actor that played in a movie")
        assert tags["that"] == "WDT"

    def test_that_determiner(self):
        assert tags_of("Who directed that movie?")["that"] == "DT"

    def test_participle_after_be(self):
        tags = tags_of("Who was married to an actor?")
        assert tags["married"] == "VBN"

    def test_participle_after_be_with_intervening_subject(self):
        tags = tags_of("In which city was the queen buried?")
        assert tags["buried"] == "VBN"

    def test_participle_in_reduced_relative(self):
        tags = tags_of("Give me all movies directed by Coppola.")
        assert tags["directed"] == "VBN"

    def test_passive_across_of_phrase(self):
        tags = tags_of("Who is the daughter of Bill Clinton married to?")
        assert tags["married"] == "VBN"

    def test_homograph_verb_after_subject(self):
        tags = tags_of("In which movies did Antonio Banderas star?")
        assert tags["star"] == "VB"

    def test_homograph_noun_after_determiner(self):
        tags = tags_of("Who is the star of the movie?")
        assert tags["star"] == "NN"

    def test_homograph_compound_in_copular_frame(self):
        tags = tags_of("What is the birth name of Angela Merkel?")
        assert tags["name"] == "NN"

    def test_lemmas_assigned(self):
        by_text = {t.text: t.lemma for t in tag("Who was married to an actor?")}
        assert by_text["was"] == "be"
        assert by_text["married"] == "marry"
        assert by_text["actor"] == "actor"

    def test_proper_noun_lemma_keeps_case(self):
        by_text = {t.text: t.lemma for t in tag("Who developed Minecraft?")}
        assert by_text["Minecraft"] == "Minecraft"
