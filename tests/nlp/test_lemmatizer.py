"""Tests for the rule-based lemmatizer."""

import pytest

from repro.nlp.lemmatizer import (
    lemmatize,
    lemmatize_adjective,
    lemmatize_noun,
    lemmatize_verb,
)


class TestVerbs:
    @pytest.mark.parametrize(
        ("form", "base"),
        [
            ("is", "be"), ("was", "be"), ("were", "be"), ("been", "be"),
            ("has", "have"), ("did", "do"),
            ("married", "marry"), ("plays", "play"), ("played", "play"),
            ("starring", "star"), ("starred", "star"),
            ("directed", "direct"), ("produces", "produce"),
            ("produced", "produce"), ("wrote", "write"), ("written", "write"),
            ("born", "bear"), ("died", "die"), ("flows", "flow"),
            ("founded", "found"), ("developed", "develop"),
            ("buried", "bury"), ("created", "create"), ("won", "win"),
            ("gave", "give"), ("operated", "operate"), ("living", "live"),
        ],
    )
    def test_inflections(self, form, base):
        assert lemmatize_verb(form) == base

    def test_base_form_unchanged(self):
        assert lemmatize_verb("play") == "play"

    def test_case_insensitive(self):
        assert lemmatize_verb("Was") == "be"


class TestNouns:
    @pytest.mark.parametrize(
        ("form", "base"),
        [
            ("movies", "movie"), ("cities", "city"), ("companies", "company"),
            ("children", "child"), ("people", "person"), ("wives", "wife"),
            ("actors", "actor"), ("members", "member"), ("books", "book"),
            ("countries", "country"), ("nicknames", "nickname"),
            ("headquarters", "headquarters"), ("pads", "pad"),
        ],
    )
    def test_plurals(self, form, base):
        assert lemmatize_noun(form) == base

    def test_singular_unchanged(self):
        assert lemmatize_noun("actor") == "actor"

    def test_us_suffix_not_stripped(self):
        assert lemmatize_noun("campus") == "campus"


class TestAdjectives:
    def test_superlative(self):
        assert lemmatize_adjective("youngest") == "young"
        assert lemmatize_adjective("largest") == "large"

    def test_comparative(self):
        assert lemmatize_adjective("bigger") == "big"

    def test_plain(self):
        assert lemmatize_adjective("tall") == "tall"


class TestDispatch:
    def test_by_pos(self):
        assert lemmatize("movies", "NNS") == "movie"
        assert lemmatize("married", "VBN") == "marry"
        assert lemmatize("youngest", "JJS") == "young"

    def test_proper_nouns_keep_surface(self):
        assert lemmatize("Philadelphia", "NNP") == "Philadelphia"

    def test_without_pos(self):
        assert lemmatize("was") == "be"
        assert lemmatize("children") == "child"
