"""Coverage tests for the expanded lexicon and its disambiguation rules."""

import pytest

from repro.nlp import lexicon
from repro.nlp.lemmatizer import lemmatize_verb
from repro.nlp.tagger import tag


def tags_of(question):
    return {t.text: t.pos for t in tag(question)}


class TestLexiconConsistency:
    def test_irregular_verb_bases_are_known(self):
        for form, (base, _tag) in lexicon.IRREGULAR_VERBS.items():
            assert base in lexicon.VERB_BASES, f"{form} → {base} not a known base"

    def test_irregular_noun_bases_consistent(self):
        for plural, base in lexicon.IRREGULAR_NOUN_PLURALS.items():
            assert plural != base or plural in ("headquarters", "series", "species")

    def test_superlative_bases_lowercase(self):
        for superlative, base in lexicon.SUPERLATIVES.items():
            assert superlative == superlative.lower()
            assert base == base.lower()

    def test_demonyms_capitalised_countries(self):
        for adjective, country in lexicon.DEMONYMS.items():
            assert adjective == adjective.lower()
            assert country[0].isupper()

    def test_light_words_include_aux_and_prepositions(self):
        assert "of" in lexicon.LIGHT_WORDS
        assert "was" in lexicon.LIGHT_WORDS
        assert "to" in lexicon.LIGHT_WORDS


class TestExpandedVerbs:
    @pytest.mark.parametrize(
        ("form", "base"),
        [
            ("assassinated", "assassinate"), ("bought", "buy"),
            ("broadcast", "broadcast"), ("defeated", "defeat"),
            ("established", "establish"), ("exhibits", "exhibit"),
            ("invented", "invent"), ("merged", "merge"),
            ("orbits", "orbit"), ("painted", "paint"),
            ("premiered", "premiere"), ("reigned", "reign"),
            ("sold", "sell"), ("voiced", "voice"),
        ],
    )
    def test_new_verb_inflections(self, form, base):
        assert lemmatize_verb(form) == base

    def test_new_verbs_tagged_as_verbs(self):
        tags = tags_of("Who invented the telephone?")
        assert tags["invented"] == "VBD"

    def test_assassinated_participle(self):
        tags = tags_of("Who was assassinated in Dallas?")
        assert tags["assassinated"] == "VBN"


class TestSFormDisambiguation:
    def test_films_as_noun_after_demonym(self):
        assert tags_of("Give me all Argentine films.")["films"] == "NNS"

    def test_films_as_noun_after_determiner(self):
        assert tags_of("Give me all the films.")["films"] == "NNS"

    def test_films_as_verb_after_subject(self):
        assert tags_of("Who films the movie?")["films"] == "VBZ"

    def test_plays_as_verb_after_wh(self):
        assert tags_of("Who plays for Manchester United?")["plays"] == "VBZ"

    def test_plays_as_noun_after_possessive(self):
        assert tags_of("Give me his plays.")["plays"] == "NNS"

    def test_unambiguous_plural_untouched(self):
        assert tags_of("Which cities are big?")["cities"] == "NNS"

    def test_unambiguous_verb_untouched(self):
        assert tags_of("Who produces Orangina?")["produces"] == "VBZ"
