"""Tests for the question tokenizer."""

from repro.nlp.tokenizer import detokenize, tokenize


def texts(question):
    return [t.text for t in tokenize(question)]


class TestTokenize:
    def test_simple_question(self):
        assert texts("Who is the mayor of Berlin?") == [
            "Who", "is", "the", "mayor", "of", "Berlin", "?",
        ]

    def test_indexes_are_sequential(self):
        tokens = tokenize("Who founded Intel?")
        assert [t.index for t in tokens] == [0, 1, 2, 3]

    def test_final_period_split(self):
        assert texts("Give me all members of Prodigy.")[-1] == "."

    def test_initials_kept(self):
        assert "F." in texts("Who was the successor of John F. Kennedy?")

    def test_dotted_abbreviation_kept(self):
        assert "U.S." in texts("Sean Parnell is the governor of which U.S. state?")

    def test_comma_separated(self):
        tokens = texts("In Berlin, who is the mayor?")
        assert "," in tokens
        assert "Berlin" in tokens

    def test_contraction_expansion(self):
        assert texts("What's the capital of Canada?")[:2] == ["What", "is"]

    def test_contraction_keeps_final_punctuation(self):
        assert texts("Who's the mayor?")[-1] == "?"

    def test_hyphenated_word(self):
        assert "vice-president" in texts("Who is the vice-president?")

    def test_apostrophe_name(self):
        assert "O'Brien" in texts("Who is O'Brien?")

    def test_numbers(self):
        assert "76ers" in texts("Who plays for the Philadelphia 76ers?")

    def test_decimal_number(self):
        assert "1.85" in texts("Is he 1.85 meters tall?")

    def test_empty_string(self):
        assert tokenize("") == []

    def test_lower_property(self):
        token = tokenize("Berlin")[0]
        assert token.lower == "berlin"


class TestDetokenize:
    def test_roundtrip_spacing(self):
        tokens = tokenize("Who is the mayor of Berlin?")
        assert detokenize(tokens) == "Who is the mayor of Berlin?"

    def test_empty(self):
        assert detokenize([]) == ""
