"""Regression tests for the fork-safety contract of reset_after_fork.

``os.fork()`` copies every lock in whatever state a parent thread left it.
If any thread held a component's lock at fork time, the child inherits a
lock that is locked forever — the first acquire deadlocks.  These tests
simulate that state *without* forking (hold the lock, swap in the
post-fork reset, assert the component is usable again) so the suite stays
fast and portable.
"""

import threading
from collections import OrderedDict

import pytest

from repro.obs.metrics import Metrics
from repro.serve import EngineConfig, QAEngine
from repro.serve.cache import TTLCache

ACQUIRE_TIMEOUT = 2.0


def _hold_forever(lock):
    """Acquire ``lock`` and never release it — a parent thread frozen by fork."""
    lock.acquire()


class TestMetricsResetAfterFork:
    def test_replaces_a_held_lock(self):
        metrics = Metrics()
        metrics.incr("parent.traffic", 5)
        _hold_forever(metrics._lock)

        metrics.reset_after_fork()

        # A fresh, unlocked lock: the hot path must not block.
        assert metrics._lock.acquire(timeout=ACQUIRE_TIMEOUT)
        metrics._lock.release()
        metrics.incr("child.traffic")
        assert metrics.counter("child.traffic") == 1

    def test_drops_parent_numbers(self):
        metrics = Metrics()
        metrics.incr("parent.traffic", 5)
        metrics.observe("parent.latency", 12.0)
        metrics.reset_after_fork()
        snapshot = metrics.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["histograms"] == {}


class TestCacheResetAfterFork:
    def test_replaces_a_held_lock(self):
        cache = TTLCache(maxsize=8, ttl=60.0)
        cache.put("parent", "value")
        _hold_forever(cache._lock)

        cache.reset_after_fork()

        assert cache._lock.acquire(timeout=ACQUIRE_TIMEOUT)
        cache._lock.release()
        cache.put("child", "value")
        assert cache.get("child") == "value"

    def test_drops_entries_and_stats(self):
        cache = TTLCache(maxsize=8, ttl=60.0)
        cache.put("parent", "value")
        assert cache.get("parent") == "value"
        cache.reset_after_fork()
        assert len(cache) == 0
        stats = cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 0
        assert isinstance(cache._entries, OrderedDict)


class TestEngineResetAfterFork:
    def test_delegates_lock_replacement_to_components(self, kg, dictionary):
        engine = QAEngine(kg, dictionary, EngineConfig(pool_size=1))
        engine.warm()
        try:
            engine.ask("Who is the mayor of Berlin?")
            # Freeze every component lock the way a mid-request fork would.
            _hold_forever(engine.metrics._lock)
            _hold_forever(engine.answer_cache._lock)
            _hold_forever(engine.link_cache._lock)
            _hold_forever(engine._state_lock)

            engine.reset_after_fork()

            for lock in (
                engine.metrics._lock,
                engine.answer_cache._lock,
                engine.link_cache._lock,
                engine._state_lock,
            ):
                assert lock.acquire(timeout=ACQUIRE_TIMEOUT)
                lock.release()
            # The child serves normally after warm().
            assert engine.ready is False
            engine.warm()
            response = engine.ask("Who is the mayor of Berlin?")
            assert response["answers"]
        finally:
            engine.close()

    def test_shares_warm_state_but_not_process_state(self, kg, dictionary):
        engine = QAEngine(kg, dictionary, EngineConfig(pool_size=1))
        engine.warm()
        try:
            kernel_before = engine.kg.kernel
            pool_before = engine._pool
            admission_before = engine.admission
            engine.reset_after_fork()
            assert engine.kg.kernel is kernel_before          # shared via fork
            assert engine._pool is not pool_before            # per-process
            assert engine.admission is not admission_before   # per-process
            assert engine.metrics.snapshot()["counters"] == {}
        finally:
            engine.close()
