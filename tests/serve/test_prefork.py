"""Pre-fork serving: socket binding, fork hygiene, N=2 end-to-end smoke.

The smoke test drives the real ``repro serve --workers 2`` CLI as a
subprocess over a compiled snapshot (so worker warmup is near-instant):
requests must land on two distinct PIDs, answers must be identical to a
single worker's, ``/metrics`` must aggregate both registries, and a
SIGKILLed worker must be respawned by the supervisor.
"""

import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

from repro.rdf.snapshot import compile_snapshot
from repro.serve import EngineConfig, PreforkServer, QAEngine, supports_reuseport

BERLIN_Q = "Who is the mayor of Berlin?"


# --------------------------------------------------------------------- #
# Unit-level: binding and argument validation
# --------------------------------------------------------------------- #

class TestBinding:
    def test_supports_reuseport_is_boolean(self):
        assert supports_reuseport() in (True, False)

    def test_workers_must_be_positive(self, engine):
        with pytest.raises(ValueError, match="workers"):
            PreforkServer(engine, workers=0)

    def test_start_binds_before_forking(self, engine):
        supervisor = PreforkServer(engine, port=0, workers=2)
        try:
            host, port = supervisor.start()
            assert host == "127.0.0.1"
            assert port > 0
            # Every worker slot has a listener on the public port and its
            # own loopback admin socket; nothing has forked yet.
            assert len(supervisor._workers) == 2
            for worker in supervisor._workers:
                assert worker.pid == 0
                assert worker.listen_sock.getsockname()[1] == port
                assert worker.admin_sock.getsockname()[0] == "127.0.0.1"
            assert len({p["url"] for p in supervisor._peers}) == 2
        finally:
            supervisor._close_sockets()


# --------------------------------------------------------------------- #
# Fork hygiene: the engine must be reusable in a forked child
# --------------------------------------------------------------------- #

def _run_in_fork(child) -> bytes:
    """Run ``child()`` in a forked process; return the bytes it produced.

    The child must never re-enter pytest — it writes its result to a pipe
    and ``os._exit``\\ s.  An empty result means the child died before
    reporting (the assertion failure surfaces as such in the parent).
    """
    read_fd, write_fd = os.pipe()
    pid = os.fork()
    if pid == 0:
        os.close(read_fd)
        try:
            payload = child()
            os.write(write_fd, payload)
            os.close(write_fd)
            os._exit(0)
        except BaseException:
            os._exit(1)
    os.close(write_fd)
    chunks = []
    with open(read_fd, "rb") as reader:
        chunks.append(reader.read())
    _, status = os.waitpid(pid, 0)
    assert os.waitstatus_to_exitcode(status) == 0
    return b"".join(chunks)


class TestForkHygiene:
    def test_forked_worker_answers_after_reset(self, kg, dictionary):
        parent = QAEngine(kg, dictionary, EngineConfig(pool_size=2, queue_limit=2))
        parent.warm()
        try:
            def child() -> bytes:
                engine = parent.reset_after_fork()
                assert not engine.ready  # reset demands a rewarm
                engine.warm()
                response = engine.ask(BERLIN_Q)
                return json.dumps(response["answers"]).encode()

            assert json.loads(_run_in_fork(child)) == ["res:Klaus_Wowereit"]
            # The parent's copy is untouched by the child's reset.
            assert parent.ready
            assert parent.ask(BERLIN_Q)["answers"] == ["res:Klaus_Wowereit"]
        finally:
            parent.close()

    def test_ttl_eviction_works_in_forked_worker(self, kg, dictionary):
        """Regression: cache timestamps are per-process monotonic anchors.
        A forked worker that inherited the parent's entries wholesale
        would compare the parent's anchors against its own clock; after
        ``reset_after_fork`` the caches are empty and expiry runs on the
        child's own timeline."""
        parent = QAEngine(
            kg, dictionary,
            EngineConfig(pool_size=2, queue_limit=2, cache_ttl_s=0.15),
        )
        parent.warm()
        try:
            parent.ask(BERLIN_Q)
            assert len(parent.answer_cache) == 1

            def child() -> bytes:
                engine = parent.reset_after_fork()
                engine.warm()
                # Inherited entries (and their foreign anchors) are gone.
                assert len(engine.answer_cache) == 0
                first = engine.ask(BERLIN_Q)
                again = engine.ask(BERLIN_Q)
                assert again["cached"]
                time.sleep(0.2)  # past cache_ttl_s on the child's clock
                expired = engine.ask(BERLIN_Q)
                assert not expired["cached"]
                stats = engine.answer_cache.stats()
                return json.dumps([first["answers"], stats["hits"]]).encode()

            answers, child_hits = json.loads(_run_in_fork(child))
            assert answers == ["res:Klaus_Wowereit"]
            assert child_hits == 1  # reset_stats wiped the parent's counters
        finally:
            parent.close()


# --------------------------------------------------------------------- #
# End-to-end: repro serve --workers 2 over a compiled snapshot
# --------------------------------------------------------------------- #

def _get(base: str, path: str, timeout: float = 10.0) -> dict:
    with urllib.request.urlopen(f"{base}{path}", timeout=timeout) as response:
        return json.loads(response.read())


def _ask(base: str, question: str, timeout: float = 30.0) -> dict:
    request = urllib.request.Request(
        f"{base}/ask",
        data=json.dumps({"question": question}).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


@pytest.fixture(scope="module")
def snapshot_path(kg, dictionary, tmp_path_factory) -> Path:
    path = tmp_path_factory.mktemp("prefork") / "graph.snap"
    compile_snapshot(path, kg, dictionary)
    return path


@pytest.fixture(scope="module")
def cluster(snapshot_path):
    """``repro serve --workers 2`` as a subprocess on an ephemeral port."""
    repo_root = Path(__file__).resolve().parent.parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(repo_root / "src"), env.get("PYTHONPATH")])
    )
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--workers", "2", "--port", "0",
            "--snapshot", str(snapshot_path),
        ],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    line = process.stdout.readline()
    match = re.search(r"http://([\d.]+):(\d+)", line)
    assert match, f"no address in server banner: {line!r}"
    base = f"http://{match.group(1)}:{match.group(2)}"
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        try:
            if _get(base, "/healthz", timeout=2.0).get("ready"):
                break
        except OSError:
            pass
        time.sleep(0.1)
    else:
        process.kill()
        pytest.fail("pre-fork cluster never became ready")
    yield base, process
    process.send_signal(signal.SIGTERM)
    try:
        assert process.wait(timeout=15) == 0
    except subprocess.TimeoutExpired:
        process.kill()
        raise


def _observed_pids(base: str, want: int, budget_s: float = 30.0) -> set[int]:
    """PIDs seen on /healthz until ``want`` distinct ones (kernel accept
    balancing decides which worker answers each probe)."""
    pids: set[int] = set()
    deadline = time.monotonic() + budget_s
    while len(pids) < want and time.monotonic() < deadline:
        try:
            health = _get(base, "/healthz", timeout=2.0)
        except OSError:
            time.sleep(0.1)
            continue
        if health.get("ready"):
            pids.add(health["pid"])
        time.sleep(0.02)
    return pids


class TestClusterSmoke:
    def test_two_distinct_worker_pids(self, cluster):
        base, process = cluster
        pids = _observed_pids(base, want=2)
        assert len(pids) == 2
        assert process.pid not in pids  # the supervisor never serves

    def test_workers_answer_identically(self, cluster, kg, dictionary):
        base, _process = cluster
        reference = QAEngine(
            kg, dictionary, EngineConfig(pool_size=2, queue_limit=2)
        )
        reference.warm()
        try:
            expected = reference.ask(BERLIN_Q)["answers"]
        finally:
            reference.close()
        # Enough requests that both workers answer some of them.
        for _ in range(8):
            assert _ask(base, BERLIN_Q)["answers"] == expected

    def test_healthz_reports_worker_identity(self, cluster):
        base, _process = cluster
        health = _get(base, "/healthz")
        worker = health["worker"]
        assert worker["workers"] == 2
        assert worker["index"] in (0, 1)
        assert worker["pid"] == health["pid"]

    def test_metrics_aggregates_across_workers(self, cluster):
        base, _process = cluster
        for _ in range(4):
            _ask(base, BERLIN_Q)
        merged = _get(base, "/metrics")
        assert set(merged) == {"counters", "histograms", "workers"}
        entries = {entry["index"]: entry for entry in merged["workers"]}
        assert set(entries) == {0, 1}
        reachable = [e for e in entries.values() if "error" not in e]
        assert len(reachable) == 2
        per_worker = sum(e["counters"].get("serve.requests", 0) for e in reachable)
        assert merged["counters"]["serve.requests"] == per_worker
        assert per_worker >= 4

    def test_killed_worker_is_respawned(self, cluster):
        base, _process = cluster
        before = _observed_pids(base, want=2)
        assert len(before) == 2
        victim = sorted(before)[0]
        os.kill(victim, signal.SIGKILL)
        deadline = time.monotonic() + 30
        replacement: set[int] = set()
        while time.monotonic() < deadline:
            replacement = _observed_pids(base, want=2, budget_s=5.0)
            if len(replacement) == 2 and victim not in replacement:
                break
        assert len(replacement) == 2
        assert victim not in replacement
