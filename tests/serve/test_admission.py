"""Admission control: bounded in-flight budget, rejection, pressure."""

import pytest

from repro.obs.metrics import Metrics
from repro.serve.admission import AdmissionController, AdmissionRejected


class TestAdmission:
    def test_admit_and_release_track_in_flight(self):
        admission = AdmissionController(capacity=2)
        token = admission.admit()
        assert admission.in_flight == 1
        token.release()
        assert admission.in_flight == 0

    def test_rejects_beyond_capacity(self):
        admission = AdmissionController(capacity=2)
        held = [admission.admit(), admission.admit()]
        with pytest.raises(AdmissionRejected) as rejected:
            admission.admit()
        assert rejected.value.capacity == 2
        assert rejected.value.in_flight == 2
        for token in held:
            token.release()
        admission.admit().release()  # slots free again

    def test_context_manager_releases_on_exception(self):
        admission = AdmissionController(capacity=1)
        with pytest.raises(RuntimeError):
            with admission.admit():
                raise RuntimeError("boom")
        assert admission.in_flight == 0

    def test_release_is_idempotent(self):
        admission = AdmissionController(capacity=1)
        token = admission.admit()
        token.release()
        token.release()
        assert admission.in_flight == 0

    def test_pressure_scales_with_occupancy(self):
        admission = AdmissionController(capacity=4)
        assert admission.pressure() == 0.0
        tokens = [admission.admit(), admission.admit(), admission.admit()]
        assert admission.pressure() == 0.75
        for token in tokens:
            token.release()
        assert admission.pressure() == 0.0

    def test_zero_capacity_is_always_saturated(self):
        admission = AdmissionController(capacity=0)
        assert admission.pressure() == 1.0
        with pytest.raises(AdmissionRejected):
            admission.admit()

    def test_stats_and_metrics(self):
        metrics = Metrics()
        admission = AdmissionController(capacity=1, metrics=metrics)
        admission.admit().release()
        with pytest.raises(AdmissionRejected):
            with admission.admit():
                admission.admit()
        stats = admission.stats()
        assert stats == {
            "capacity": 1,
            "in_flight": 0,
            "peak_in_flight": 1,
            "admitted": 2,
            "rejected": 1,
        }
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["serve.rejected"] == 1
        assert snapshot["histograms"]["serve.queue_depth"]["count"] == 2
        assert snapshot["histograms"]["serve.in_flight_ms"]["count"] == 2
