"""Concurrent answering must be indistinguishable from serial answering.

The satellite-1 regression test: one engine hammered from many threads
produces exactly the answers a serial pipeline produces, with and without
the answer cache.  Any unguarded shared state in the kernel, linker,
metrics, or matcher shows up here as wrong answers or raised exceptions.
"""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core import GAnswer
from repro.datasets import qald_questions
from repro.serve import EngineConfig, QAEngine

#: Enough questions to overlap every pipeline stage across threads, few
#: enough to keep the test quick.  Each is asked several times so threads
#: collide on the same kernel regions and candidate lists.
QUESTION_COUNT = 24
REPEATS = 3


def _serial_reference(kg, dictionary, questions):
    system = GAnswer(kg, dictionary)
    return {
        question: ([str(t) for t in answer.answers], answer.boolean, answer.failure)
        for question in questions
        for answer in [system.answer(question)]
    }


@pytest.fixture(scope="module")
def questions():
    return [q.text for q in qald_questions()[:QUESTION_COUNT]]


@pytest.fixture(scope="module")
def reference(kg, dictionary, questions):
    return _serial_reference(kg, dictionary, questions)


def _hammer(engine, questions):
    """Every question, REPEATS times, interleaved across 8 threads."""
    workload = [q for _ in range(REPEATS) for q in questions]
    with ThreadPoolExecutor(max_workers=8) as pool:
        answers = list(pool.map(engine.ask_answer, workload))
    return workload, answers


class TestConcurrentEqualsSerial:
    def test_with_cache_disabled_every_request_computes(
        self, kg, dictionary, questions, reference
    ):
        # cache_size=0 forces every concurrent request through the full
        # pipeline — the pure thread-safety check.
        engine = QAEngine(
            kg, dictionary,
            EngineConfig(pool_size=8, queue_limit=64, cache_size=0, deadline_s=None),
        )
        try:
            workload, answers = _hammer(engine, questions)
        finally:
            engine.close()
        for question, answer in zip(workload, answers):
            expected = reference[question]
            assert ([str(t) for t in answer.answers], answer.boolean, answer.failure) \
                == expected, f"concurrent answer diverged for {question!r}"

    def test_with_cache_enabled_results_are_identical_too(
        self, kg, dictionary, questions, reference
    ):
        engine = QAEngine(
            kg, dictionary,
            EngineConfig(pool_size=8, queue_limit=64, deadline_s=None),
        )
        try:
            workload, answers = _hammer(engine, questions)
            assert engine.answer_cache.stats()["hits"] > 0  # the cache engaged
        finally:
            engine.close()
        for question, answer in zip(workload, answers):
            expected = reference[question]
            assert ([str(t) for t in answer.answers], answer.boolean, answer.failure) \
                == expected, f"cached concurrent answer diverged for {question!r}"
