"""Cache semantics: normalization, LRU+TTL, versioned keys, linker cache."""

import pytest

from repro.obs.metrics import Metrics
from repro.rdf import IRI, Literal, Triple, TripleStore
from repro.serve.cache import (
    CachingLinker,
    TTLCache,
    answer_cache_key,
    normalize_question,
)


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestNormalizeQuestion:
    def test_case_whitespace_and_end_punctuation_collapse(self):
        variants = [
            "Who is the mayor of Berlin?",
            "who is the  mayor of berlin",
            "  WHO IS THE MAYOR OF BERLIN ?! ",
            "Who is the\tmayor of Berlin.",
        ]
        normalized = {normalize_question(v) for v in variants}
        assert normalized == {"who is the mayor of berlin"}

    def test_internal_punctuation_is_preserved(self):
        # Trailing end punctuation goes, the *internal* dots stay.
        assert "u.s" in normalize_question("Which rivers flow through the U.S.?")
        assert "benedict xvi" in normalize_question("When was Benedict XVI born?")

    def test_different_questions_stay_different(self):
        assert normalize_question("Who is the mayor of Berlin?") != normalize_question(
            "Who is the mayor of Paris?"
        )


class TestTTLCache:
    def test_hit_after_put(self):
        cache = TTLCache(maxsize=4, ttl=60.0)
        cache.put("k", "v")
        assert cache.get("k") == "v"

    def test_miss_on_absent_key(self):
        assert TTLCache().get("nope") is None

    def test_entries_expire_after_ttl(self):
        clock = FakeClock()
        cache = TTLCache(maxsize=4, ttl=30.0, clock=clock)
        cache.put("k", "v")
        clock.advance(29.9)
        assert cache.get("k") == "v"
        clock.advance(0.2)
        assert cache.get("k") is None
        assert len(cache) == 0  # the expired entry was dropped

    def test_lru_eviction_keeps_recently_used(self):
        cache = TTLCache(maxsize=2, ttl=60.0)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a's recency
        cache.put("c", 3)           # evicts b, the least recently used
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_maxsize_zero_disables(self):
        cache = TTLCache(maxsize=0)
        cache.put("k", "v")
        assert cache.get("k") is None
        assert len(cache) == 0

    def test_counters_reported_to_metrics(self):
        metrics = Metrics()
        clock = FakeClock()
        cache = TTLCache(maxsize=1, ttl=10.0, clock=clock, metrics=metrics, name="t")
        cache.get("missing")
        cache.put("a", 1)
        cache.get("a")
        cache.put("b", 2)  # evicts a
        clock.advance(11)
        cache.get("b")     # expired
        counters = metrics.snapshot()["counters"]
        assert counters["t.miss"] == 2
        assert counters["t.hit"] == 1
        assert counters["t.evict"] == 1
        assert counters["t.expired"] == 1

    def test_stats_shape_and_hit_rate(self):
        cache = TTLCache(maxsize=8, ttl=60.0)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        stats = cache.stats()
        assert stats["size"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.5

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TTLCache(maxsize=-1)
        with pytest.raises(ValueError):
            TTLCache(ttl=0)


class TestAnswerCacheKey:
    def test_equivalent_questions_share_a_key(self):
        assert answer_cache_key("Who is X?", 3, "k=10") == answer_cache_key(
            " who is x ", 3, "k=10"
        )

    def test_store_version_partitions_keys(self):
        assert answer_cache_key("Who is X?", 3, "k=10") != answer_cache_key(
            "Who is X?", 4, "k=10"
        )

    def test_config_fingerprint_partitions_keys(self):
        assert answer_cache_key("Who is X?", 3, "k=10") != answer_cache_key(
            "Who is X?", 3, "k=3"
        )


class _CountingLinker:
    """A linker stub recording how many times link() actually computes."""

    def __init__(self):
        self.calls = 0
        self.index = "the-index"

    def link(self, phrase, tracer=None):
        self.calls += 1
        return [f"cand:{phrase}"]


class TestCachingLinker:
    def _store(self):
        store = TripleStore()
        store.add(Triple(IRI("a"), IRI("p"), Literal("x")))
        return store

    def test_second_lookup_is_cached(self):
        inner = _CountingLinker()
        linker = CachingLinker(inner, TTLCache(), self._store())
        first = linker.link("Berlin")
        second = linker.link("Berlin")
        assert first == second == ["cand:Berlin"]
        assert inner.calls == 1

    def test_returned_lists_are_independent_copies(self):
        linker = CachingLinker(_CountingLinker(), TTLCache(), self._store())
        first = linker.link("Berlin")
        first.append("mutated")
        assert linker.link("Berlin") == ["cand:Berlin"]

    def test_store_mutation_invalidates(self):
        inner = _CountingLinker()
        store = self._store()
        linker = CachingLinker(inner, TTLCache(), store)
        linker.link("Berlin")
        store.add(Triple(IRI("b"), IRI("p"), Literal("y")))  # bumps version
        linker.link("Berlin")
        assert inner.calls == 2

    def test_delegates_other_attributes(self):
        linker = CachingLinker(_CountingLinker(), TTLCache(), self._store())
        assert linker.index == "the-index"
