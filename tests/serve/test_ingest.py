"""Live ingest: engine batch writes, HTTP auth, compaction, cache freshness.

The serving-side contract for the overlay store: authenticated ``/ingest``
batches land atomically under write admission, the kernel is patched (not
rebuilt), version-keyed answer caches can never serve a stale answer, and
``/compact`` folds the delta into a fresh frozen base under live readers.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.serve.admission import AdmissionRejected
from repro.rdf import IRI, Literal, Triple
from repro.rdf.graph import KnowledgeGraph
from repro.rdf.overlay import OverlayBackend
from repro.serve import EngineConfig, QAEngine, build_server

BERLIN_Q = "Who is the mayor of Berlin?"
TOKEN = "test-ingest-token"


def fresh_engine(kg, dictionary, **config):
    """An engine over a *private compacted copy* of the session store.

    Ingest tests mutate; the session kg must stay pristine for everyone
    else, and a frozen base is what makes the overlay wrap observable.
    """
    private = KnowledgeGraph(kg.store.compacted())
    defaults = dict(pool_size=2, queue_limit=4)
    defaults.update(config)
    return QAEngine(private, dictionary, EngineConfig(**defaults))


def wire(s, p, o):
    return [s, p, o]


@pytest.fixture()
def engine_rw(kg, dictionary):
    engine = fresh_engine(kg, dictionary)
    yield engine
    engine.close()


class TestEngineIngest:
    def test_wraps_frozen_store_in_overlay_on_first_write(self, engine_rw):
        assert not engine_rw.kg.store.writable
        result = engine_rw.ingest([Triple(IRI("t:s"), IRI("t:p"), IRI("t:o"))])
        assert result["added"] == 1
        backend = engine_rw.kg.store.backend
        assert isinstance(backend, OverlayBackend)
        assert backend.delta_statistics()["delta_adds"] == 1

    def test_batch_applies_adds_and_removes(self, engine_rw):
        v0 = engine_rw.store_version
        adds = [
            Triple(IRI("t:a"), IRI("t:p"), IRI("t:b")),
            Triple(IRI("t:a"), IRI("t:p"), Literal("label", language="en")),
        ]
        result = engine_rw.ingest(adds)
        assert (result["added"], result["removed"]) == (2, 0)
        assert result["store_version"] == v0 + 2
        result = engine_rw.ingest(
            [], removes=[adds[0], Triple(IRI("t:no"), IRI("t:p"), IRI("t:x"))]
        )
        assert (result["added"], result["removed"]) == (0, 1)
        assert result["store_version"] == v0 + 3
        assert result["delta"]["delta_adds"] == 1

    def test_kernel_patched_not_stale(self, engine_rw):
        engine_rw.ingest(
            [Triple(IRI("res:Berlin"), IRI("ont:mayor"), IRI("t:NewMayor"))]
        )
        kernel = engine_rw.kg.kernel
        assert kernel.store_version == engine_rw.store_version

    def test_cached_answer_invalidated_by_ingest(self, engine_rw):
        """The stale-cache regression: mutate under a live engine and the
        previously cached answer must miss (version-keyed), never be
        served against the new store state."""
        before = engine_rw.ask(BERLIN_Q)
        assert before["answers"] == ["res:Klaus_Wowereit"]
        cached = engine_rw.ask(BERLIN_Q)
        assert cached["cached"] is True
        engine_rw.ingest(
            [Triple(IRI("res:Berlin"), IRI("ont:mayor"), IRI("t:NewMayor"))]
        )
        after = engine_rw.ask(BERLIN_Q)
        assert after["cached"] is False
        assert "t:NewMayor" in after["answers"]
        assert "res:Klaus_Wowereit" in after["answers"]

    def test_write_admission_rejects_burst(self, kg, dictionary):
        engine = fresh_engine(kg, dictionary, ingest_capacity=1)
        try:
            release = threading.Event()
            entered = threading.Event()

            original = engine.kg.refresh

            def slow_refresh(incremental=False):
                entered.set()
                release.wait(timeout=10)
                original(incremental=incremental)

            engine.kg.refresh = slow_refresh
            first = threading.Thread(
                target=engine.ingest,
                args=([Triple(IRI("t:s1"), IRI("t:p"), IRI("t:o1"))],),
            )
            first.start()
            assert entered.wait(timeout=10)
            with pytest.raises(AdmissionRejected):
                engine.ingest([Triple(IRI("t:s2"), IRI("t:p"), IRI("t:o2"))])
            release.set()
            first.join(timeout=10)
            assert engine.metrics.counter("serve.ingest.rejected") == 1
        finally:
            release.set()
            engine.kg.refresh = original
            engine.close()


class TestEngineCompact:
    def test_compact_folds_delta_and_preserves_answers(self, engine_rw):
        engine_rw.ingest(
            [Triple(IRI("res:Berlin"), IRI("ont:mayor"), IRI("t:NewMayor"))]
        )
        engine_rw.ingest(
            [], removes=[
                Triple(IRI("res:Berlin"), IRI("ont:mayor"), IRI("res:Klaus_Wowereit"))
            ]
        )
        version = engine_rw.store_version
        size = len(engine_rw.kg.store)
        result = engine_rw.compact()
        assert result["store_version"] == version
        assert result["triples"] == size
        backend = engine_rw.kg.store.backend
        assert isinstance(backend, OverlayBackend)
        assert backend.delta_statistics() == {
            "base_triples": size, "delta_adds": 0, "tombstones": 0,
        }
        answer = engine_rw.ask(BERLIN_Q, use_cache=False)
        assert answer["answers"] == ["t:NewMayor"]
        assert engine_rw.metrics.counter("serve.compactions") == 1

    def test_compact_into_sharded_base(self, engine_rw):
        engine_rw.ingest([Triple(IRI("t:s"), IRI("t:p"), IRI("t:o"))])
        result = engine_rw.compact(shards=3)
        assert result["shards"] == 3
        assert engine_rw.stats()["store"]["backend"] == "OverlayBackend"
        base = engine_rw.kg.store.backend.base
        assert type(base).__name__ == "ShardedBackend"

    def test_compact_writes_snapshot(self, engine_rw, tmp_path):
        from repro.rdf.snapshot import load_snapshot

        engine_rw.ingest([Triple(IRI("t:s"), IRI("t:p"), IRI("t:o"))])
        path = tmp_path / "compacted.snap"
        engine_rw.compact(snapshot_path=str(path))
        state = load_snapshot(path)
        assert len(state.kg.store) == len(engine_rw.kg.store)
        assert state.kg.store.version == engine_rw.store_version


@pytest.fixture(scope="module")
def served_rw(kg, dictionary):
    """A live ingest-enabled server over a private compacted store."""
    engine = fresh_engine(kg, dictionary)
    engine.warm()
    server = build_server(engine, port=0, ingest_token=TOKEN)
    port = server.server_address[1]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{port}", engine
    server.shutdown()
    server.server_close()
    engine.close()


def _post(url, payload, headers=None):
    data = json.dumps(payload).encode()
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json", **(headers or {})}
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        body = error.read()
        return error.code, json.loads(body) if body else {}


class TestHttpAuth:
    def test_missing_token_is_401(self, served_rw):
        base, _ = served_rw
        status, body = _post(f"{base}/ingest", {"add": [wire("t:a", "t:p", "t:b")]})
        assert status == 401
        assert "token" in body["error"]

    def test_wrong_token_is_401_and_counted(self, served_rw):
        base, engine = served_rw
        before = engine.metrics.counter("serve.ingest.unauthorized")
        status, _ = _post(
            f"{base}/compact", {}, headers={"X-Ingest-Token": "wrong"}
        )
        assert status == 401
        assert engine.metrics.counter("serve.ingest.unauthorized") == before + 1

    def test_bearer_header_accepted(self, served_rw):
        base, _ = served_rw
        status, body = _post(
            f"{base}/ingest",
            {"add": [wire("t:auth", "t:p", "t:bearer")]},
            headers={"Authorization": f"Bearer {TOKEN}"},
        )
        assert status == 200
        assert body["added"] == 1

    def test_writes_disabled_entirely_is_403(self, kg, dictionary):
        engine = fresh_engine(kg, dictionary)
        server = build_server(engine, port=0)  # no token configured
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            status, body = _post(
                f"http://127.0.0.1:{port}/ingest",
                {"add": [wire("t:a", "t:p", "t:b")]},
                headers={"X-Ingest-Token": "anything"},
            )
            assert status == 403
            assert "disabled" in body["error"]
        finally:
            server.shutdown()
            server.server_close()
            engine.close()


class TestHttpIngest:
    def _post_ingest(self, base, payload):
        return _post(
            f"{base}/ingest", payload, headers={"X-Ingest-Token": TOKEN}
        )

    def test_batch_roundtrip_with_literals(self, served_rw):
        base, engine = served_rw
        status, body = self._post_ingest(
            base,
            {
                "add": [
                    wire("t:http/s", "t:p", "t:http/o"),
                    ["t:http/s", "t:p", {"literal": "3", "datatype": "xsd:integer"}],
                ],
                "remove": [wire("t:http/s", "t:p", "t:absent")],
            },
        )
        assert status == 200
        assert (body["added"], body["removed"]) == (2, 0)
        assert body["delta"]["delta_adds"] >= 2
        assert body["store_version"] == engine.store_version

    def test_empty_batch_is_400(self, served_rw):
        base, _ = served_rw
        assert self._post_ingest(base, {})[0] == 400
        assert self._post_ingest(base, {"add": [], "remove": []})[0] == 400

    def test_malformed_triples_are_400(self, served_rw):
        base, _ = served_rw
        for bad in (
            [["t:s", "t:p"]],                                 # arity
            [["t:s", "t:p", 7]],                              # object type
            "not a list",
            [["t:s", {"literal": "x"}, "t:o"]],               # predicate type
            [["t:s", "t:p", {"literal": "x", "language": "en",
                             "datatype": "xsd:string"}]],     # both tags
        ):
            status, body = self._post_ingest(base, {"add": bad})
            assert status == 400, bad
            assert "error" in body

    def test_answer_flips_and_compaction_persists_it(self, served_rw):
        base, _ = served_rw
        ask = lambda: _post(f"{base}/ask", {"question": BERLIN_Q, "no_cache": True})
        status, before = ask()
        assert status == 200
        status, body = self._post_ingest(
            base, {"add": [wire("res:Berlin", "ont:mayor", "t:FlipMayor")]}
        )
        assert status == 200
        status, after = ask()
        assert "t:FlipMayor" in after["answers"]
        status, body = _post(
            f"{base}/compact", {}, headers={"X-Ingest-Token": TOKEN}
        )
        assert status == 200
        status, compacted = ask()
        assert "t:FlipMayor" in compacted["answers"]
        # roll back so sibling tests see the canonical answer set
        status, _ = self._post_ingest(
            base, {"remove": [wire("res:Berlin", "ont:mayor", "t:FlipMayor")]}
        )
        assert status == 200

    def test_stats_reports_overlay_delta(self, served_rw):
        base, _ = served_rw
        self._post_ingest(base, {"add": [wire("t:stat", "t:p", "t:o")]})
        with urllib.request.urlopen(f"{base}/stats", timeout=30) as response:
            stats = json.loads(response.read())
        assert "overlay" in stats["store"]
        assert stats["store"]["overlay"]["delta_adds"] >= 1

    def test_compact_validates_params(self, served_rw):
        base, _ = served_rw
        headers = {"X-Ingest-Token": TOKEN}
        assert _post(f"{base}/compact", {"shards": 0}, headers=headers)[0] == 400
        assert _post(f"{base}/compact", {"shards": True}, headers=headers)[0] == 400
        assert _post(
            f"{base}/compact", {"snapshot_path": 7}, headers=headers
        )[0] == 400


class TestPreforkGuard:
    def test_ingest_token_with_workers_refused(self):
        with pytest.raises(SystemExit, match="workers 1"):
            main([
                "serve", "--workers", "2", "--ingest-token", "x",
                "--dataset", "dbpedia-mini",
            ])
