"""HTTP transport: routes, error mapping, backpressure — on an ephemeral port."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serve import EngineConfig, QAEngine, build_server

BERLIN_Q = "Who is the mayor of Berlin?"


@pytest.fixture(scope="module")
def served(kg, dictionary):
    """A live server on an ephemeral port (engine: 2 workers, 2 waiting)."""
    engine = QAEngine(kg, dictionary, EngineConfig(pool_size=2, queue_limit=2))
    engine.warm()
    server = build_server(engine, port=0)
    port = server.server_address[1]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{port}", engine
    server.shutdown()
    server.server_close()
    engine.close()


def _post(url: str, payload) -> tuple[int, dict]:
    data = payload if isinstance(payload, bytes) else json.dumps(payload).encode()
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _get(url: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(url, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestAsk:
    def test_roundtrip(self, served):
        base, _engine = served
        status, body = _post(f"{base}/ask", {"question": BERLIN_Q})
        assert status == 200
        assert body["answers"] == ["res:Klaus_Wowereit"]
        assert body["degraded"] is False
        assert "timings_ms" in body

    def test_batch(self, served):
        base, _engine = served
        status, body = _post(
            f"{base}/batch",
            {"questions": ["What is the capital of Germany?", BERLIN_Q]},
        )
        assert status == 200
        assert len(body["responses"]) == 2
        assert body["responses"][1]["answers"] == ["res:Klaus_Wowereit"]

    def test_missing_question_is_400(self, served):
        base, _engine = served
        status, body = _post(f"{base}/ask", {"q": "nope"})
        assert status == 400
        assert "question" in body["error"]

    def test_invalid_json_is_400(self, served):
        base, _engine = served
        status, body = _post(f"{base}/ask", b"this is not json")
        assert status == 400

    def test_bad_deadline_is_400(self, served):
        base, _engine = served
        status, _body = _post(
            f"{base}/ask", {"question": BERLIN_Q, "deadline_s": -1}
        )
        assert status == 400

    def test_unknown_route_is_404(self, served):
        base, _engine = served
        assert _post(f"{base}/nope", {"question": BERLIN_Q})[0] == 404
        assert _get(f"{base}/nope")[0] == 404


class TestBackpressure:
    def test_saturated_admission_yields_429(self, served):
        base, engine = served
        # Deterministic saturation: hold every admission slot directly,
        # then any HTTP request must be rejected with 429 + Retry-After.
        tokens = [engine.admission.admit() for _ in range(engine.admission.capacity)]
        try:
            request = urllib.request.Request(
                f"{base}/ask",
                data=json.dumps({"question": BERLIN_Q}).encode(),
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=30)
            assert excinfo.value.code == 429
            assert excinfo.value.headers["Retry-After"] == "1"
            body = json.loads(excinfo.value.read())
            assert body["capacity"] == engine.admission.capacity
        finally:
            for token in tokens:
                token.release()
        # Slots released: the same request succeeds again.
        assert _post(f"{base}/ask", {"question": BERLIN_Q})[0] == 200


class TestIntrospection:
    def test_healthz_shape(self, served):
        base, engine = served
        status, body = _get(f"{base}/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["ready"] is True
        assert body["store_version"] == engine.store_version
        assert body["uptime_s"] >= 0

    def test_metrics_is_a_metrics_snapshot(self, served):
        base, _engine = served
        _post(f"{base}/ask", {"question": BERLIN_Q})
        status, body = _get(f"{base}/metrics")
        assert status == 200
        assert set(body) == {"counters", "histograms"}
        assert body["counters"]["serve.requests"] >= 1
        assert body["histograms"]["serve.latency_ms"]["count"] >= 1

    def test_stats_shape(self, served):
        base, _engine = served
        status, body = _get(f"{base}/stats")
        assert status == 200
        for key in ("answer_cache", "link_cache", "admission", "kernel", "config"):
            assert key in body
