"""HTTP transport: routes, error mapping, backpressure — on an ephemeral port."""

import http.client
import json
import socket
import struct
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.serve import EngineConfig, QAEngine, build_server
from repro.serve.server import MAX_BODY_BYTES

BERLIN_Q = "Who is the mayor of Berlin?"


@pytest.fixture(scope="module")
def served(kg, dictionary):
    """A live server on an ephemeral port (engine: 2 workers, 2 waiting)."""
    engine = QAEngine(kg, dictionary, EngineConfig(pool_size=2, queue_limit=2))
    engine.warm()
    server = build_server(engine, port=0)
    port = server.server_address[1]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{port}", engine
    server.shutdown()
    server.server_close()
    engine.close()


def _post(url: str, payload) -> tuple[int, dict]:
    data = payload if isinstance(payload, bytes) else json.dumps(payload).encode()
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _get(url: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(url, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestAsk:
    def test_roundtrip(self, served):
        base, _engine = served
        status, body = _post(f"{base}/ask", {"question": BERLIN_Q})
        assert status == 200
        assert body["answers"] == ["res:Klaus_Wowereit"]
        assert body["degraded"] is False
        assert "timings_ms" in body

    def test_batch(self, served):
        base, _engine = served
        status, body = _post(
            f"{base}/batch",
            {"questions": ["What is the capital of Germany?", BERLIN_Q]},
        )
        assert status == 200
        assert len(body["responses"]) == 2
        assert body["responses"][1]["answers"] == ["res:Klaus_Wowereit"]

    def test_missing_question_is_400(self, served):
        base, _engine = served
        status, body = _post(f"{base}/ask", {"q": "nope"})
        assert status == 400
        assert "question" in body["error"]

    def test_invalid_json_is_400(self, served):
        base, _engine = served
        status, body = _post(f"{base}/ask", b"this is not json")
        assert status == 400

    def test_bad_deadline_is_400(self, served):
        base, _engine = served
        status, _body = _post(
            f"{base}/ask", {"question": BERLIN_Q, "deadline_s": -1}
        )
        assert status == 400

    def test_unknown_route_is_404(self, served):
        base, _engine = served
        assert _post(f"{base}/nope", {"question": BERLIN_Q})[0] == 404
        assert _get(f"{base}/nope")[0] == 404


class TestBackpressure:
    def test_saturated_admission_yields_429(self, served):
        base, engine = served
        # Deterministic saturation: hold every admission slot directly,
        # then any HTTP request must be rejected with 429 + Retry-After.
        tokens = [engine.admission.admit() for _ in range(engine.admission.capacity)]
        try:
            request = urllib.request.Request(
                f"{base}/ask",
                data=json.dumps({"question": BERLIN_Q}).encode(),
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=30)
            assert excinfo.value.code == 429
            assert excinfo.value.headers["Retry-After"] == "1"
            body = json.loads(excinfo.value.read())
            assert body["capacity"] == engine.admission.capacity
        finally:
            for token in tokens:
                token.release()
        # Slots released: the same request succeeds again.
        assert _post(f"{base}/ask", {"question": BERLIN_Q})[0] == 200


class TestKeepAlive:
    """HTTP/1.1 connection discipline: early rejections must not leave
    unread body bytes to be parsed as the next request."""

    def _raw(self, served) -> socket.socket:
        base, _engine = served
        host, port = base.removeprefix("http://").split(":")
        sock = socket.create_connection((host, int(port)), timeout=10)
        sock.settimeout(10)
        return sock

    def _response(self, sock: socket.socket) -> bytes:
        chunks = []
        while True:
            try:
                chunk = sock.recv(4096)
            except TimeoutError:
                break
            if not chunk:
                break
            chunks.append(chunk)
        return b"".join(chunks)

    def test_missing_length_is_411_and_closes(self, served):
        with self._raw(served) as sock:
            sock.sendall(
                b"POST /ask HTTP/1.1\r\nHost: t\r\n\r\n"
            )
            raw = self._response(sock)
        assert raw.startswith(b"HTTP/1.1 411")
        assert b"Connection: close" in raw

    def test_unframed_body_cannot_poison_next_request(self, served):
        # Without Content-Length the server cannot know these body bytes
        # exist; closing after the 411 is the only way they never get
        # parsed as a request line.  The socket must deliver exactly one
        # response and then EOF.
        with self._raw(served) as sock:
            sock.sendall(
                b"POST /ask HTTP/1.1\r\nHost: t\r\n\r\n"
                b'{"question": "poison"}'
            )
            raw = self._response(sock)
        assert raw.count(b"HTTP/1.1") == 1
        assert raw.startswith(b"HTTP/1.1 411")

    def test_oversized_body_is_413_and_closes(self, served):
        declared = MAX_BODY_BYTES + 1
        with self._raw(served) as sock:
            # Headers only: the server must reject from the declared
            # length without waiting to read a body it refuses to hold.
            sock.sendall(
                b"POST /ask HTTP/1.1\r\nHost: t\r\n"
                + f"Content-Length: {declared}\r\n\r\n".encode()
            )
            raw = self._response(sock)
        assert raw.startswith(b"HTTP/1.1 413")
        assert b"Connection: close" in raw

    def test_connection_survives_fully_read_400(self, served):
        """A 400 whose body *was* fully read keeps the connection usable:
        the next request on the same socket must succeed."""
        base, _engine = served
        host, port = base.removeprefix("http://").split(":")
        connection = http.client.HTTPConnection(host, int(port), timeout=30)
        try:
            connection.request(
                "POST", "/ask", body=b"not json",
                headers={"Content-Type": "application/json"},
            )
            first = connection.getresponse()
            first.read()
            assert first.status == 400
            connection.request(
                "POST", "/ask", body=json.dumps({"question": BERLIN_Q}),
                headers={"Content-Type": "application/json"},
            )
            second = connection.getresponse()
            body = json.loads(second.read())
            assert second.status == 200
            assert body["answers"] == ["res:Klaus_Wowereit"]
        finally:
            connection.close()


class TestClientDisconnect:
    def test_disconnect_counts_not_500s(self, served):
        """A client that hangs up mid-request is accounted as a disconnect,
        never as an internal error."""
        base, engine = served
        host, port = base.removeprefix("http://").split(":")
        errors_before = engine.metrics.counter("serve.internal_errors")
        disconnects_before = engine.metrics.counter("serve.client_disconnects")
        body = json.dumps({"question": BERLIN_Q, "no_cache": True}).encode()
        sock = socket.create_connection((host, int(port)), timeout=10)
        sock.sendall(
            b"POST /ask HTTP/1.1\r\nHost: t\r\n"
            b"Content-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        # RST on close (SO_LINGER zero): the handler's eventual write hits
        # a dead socket instead of a kernel buffer that silently absorbs it.
        sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
        )
        sock.close()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if engine.metrics.counter("serve.client_disconnects") > disconnects_before:
                break
            time.sleep(0.05)
        assert engine.metrics.counter("serve.client_disconnects") > disconnects_before
        assert engine.metrics.counter("serve.internal_errors") == errors_before


class TestCacheBypass:
    def test_no_cache_skips_lookup_and_store(self, served):
        base, engine = served
        question = "Who created Wikipedia?"
        bypass_before = engine.metrics.counter("serve.cache_bypass")
        # Two bypassed requests: neither consults the cache...
        for _ in range(2):
            status, body = _post(
                f"{base}/ask", {"question": question, "no_cache": True}
            )
            assert status == 200
            assert body["cached"] is False
        assert engine.metrics.counter("serve.cache_bypass") == bypass_before + 2
        # ...and neither stored: the first cache-enabled request computes.
        status, body = _post(f"{base}/ask", {"question": question})
        assert status == 200
        assert body["cached"] is False
        status, body = _post(f"{base}/ask", {"question": question})
        assert status == 200
        assert body["cached"] is True

    def test_bypass_ignores_existing_entry(self, served):
        base, _engine = served
        question = "Who is the mayor of Philadelphia?"
        _post(f"{base}/ask", {"question": question})
        status, body = _post(f"{base}/ask", {"question": question})
        assert (status, body["cached"]) == (200, True)
        status, body = _post(
            f"{base}/ask", {"question": question, "no_cache": True}
        )
        assert (status, body["cached"]) == (200, False)


class TestIntrospection:
    def test_healthz_shape(self, served):
        base, engine = served
        status, body = _get(f"{base}/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["ready"] is True
        assert body["store_version"] == engine.store_version
        assert body["uptime_s"] >= 0

    def test_metrics_is_a_metrics_snapshot(self, served):
        base, _engine = served
        _post(f"{base}/ask", {"question": BERLIN_Q})
        status, body = _get(f"{base}/metrics")
        assert status == 200
        assert set(body) == {"counters", "histograms"}
        assert body["counters"]["serve.requests"] >= 1
        assert body["histograms"]["serve.latency_ms"]["count"] >= 1

    def test_stats_shape(self, served):
        base, _engine = served
        status, body = _get(f"{base}/stats")
        assert status == 200
        for key in ("answer_cache", "link_cache", "admission", "kernel", "config"):
            assert key in body
