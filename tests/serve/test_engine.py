"""QAEngine behavior: answers, caching, deadlines, degradation, refresh."""

import pytest

from repro.core import GAnswer
from repro.exceptions import EngineClosedError
from repro.rdf import IRI, Literal, Triple
from repro.serve import EngineConfig, QAEngine

BERLIN_Q = "Who is the mayor of Berlin?"
CAPITAL_Q = "What is the capital of Germany?"


class TestEngineConfig:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            EngineConfig(pool_size=0)
        with pytest.raises(ValueError):
            EngineConfig(queue_limit=-1)
        with pytest.raises(ValueError):
            EngineConfig(degrade_pressure=1.5)
        with pytest.raises(ValueError):
            EngineConfig(deadline_s=0)

    def test_fingerprint_tracks_answer_affecting_knobs(self):
        assert EngineConfig(k=10).fingerprint() != EngineConfig(k=3).fingerprint()
        assert EngineConfig().fingerprint() == EngineConfig().fingerprint()


class TestAsk:
    def test_answers_match_direct_pipeline(self, engine, kg, dictionary):
        direct = GAnswer(kg, dictionary).answer(BERLIN_Q)
        response = engine.ask(BERLIN_Q)
        assert response["answers"] == [str(term) for term in direct.answers]
        assert response["failure"] == direct.failure
        assert response["processed"] is True
        assert response["sparql"] is not None

    def test_response_shape(self, engine):
        response = engine.ask(CAPITAL_Q)
        for key in (
            "trace_id", "question", "answers", "boolean", "processed",
            "failure", "terminated_by", "sparql", "degraded", "cached",
            "store_version", "timings_ms",
        ):
            assert key in response
        assert set(response["timings_ms"]) == {"understanding", "evaluation", "total"}
        assert response["store_version"] == engine.store_version

    def test_trace_flag_attaches_span_summary(self, engine):
        # An uncached question: cache hits return the stored result and
        # cannot carry a per-request trace.
        response = engine.ask("Is Berlin the capital of Germany?", trace=True)
        assert response["cached"] is False
        assert "trace" in response
        assert "answer" in response["trace"]["spans"]

    def test_batch_preserves_order(self, engine):
        responses = engine.batch([CAPITAL_Q, BERLIN_Q])
        assert [r["question"] for r in responses] == [CAPITAL_Q, BERLIN_Q]


class TestAnswerCache:
    @pytest.fixture()
    def fresh_engine(self, kg, dictionary):
        engine = QAEngine(kg, dictionary, EngineConfig(pool_size=1, queue_limit=2))
        yield engine
        engine.close()

    def test_repeat_question_is_served_from_cache(self, fresh_engine):
        first = fresh_engine.ask(BERLIN_Q)
        second = fresh_engine.ask(BERLIN_Q)
        assert first["cached"] is False
        assert second["cached"] is True
        assert second["answers"] == first["answers"]
        assert fresh_engine.answer_cache.stats()["hits"] == 1

    def test_normalized_variants_share_one_entry(self, fresh_engine):
        fresh_engine.ask(BERLIN_Q)
        variant = fresh_engine.ask("  who is the  MAYOR of berlin ")
        assert variant["cached"] is True

    def test_store_mutation_plus_refresh_invalidates(self, fresh_engine, kg):
        before = fresh_engine.ask(BERLIN_Q)
        assert fresh_engine.ask(BERLIN_Q)["cached"] is True
        triple = Triple(IRI("res:CacheProbe"), IRI("rdfs:label"), Literal("probe"))
        kg.store.add(triple)
        try:
            fresh_engine.refresh()
            after = fresh_engine.ask(BERLIN_Q)
            assert after["cached"] is False  # version moved, key misses
            assert after["store_version"] > before["store_version"]
            assert after["answers"] == before["answers"]
        finally:
            kg.store.remove(triple)
            fresh_engine.refresh()

    def test_cache_disabled_by_config(self, kg, dictionary):
        engine = QAEngine(
            kg, dictionary, EngineConfig(pool_size=1, cache_size=0)
        )
        try:
            engine.ask(BERLIN_Q)
            assert engine.ask(BERLIN_Q)["cached"] is False
        finally:
            engine.close()


class TestDeadline:
    def test_expired_deadline_returns_partial_with_marker(self, kg, dictionary):
        engine = QAEngine(kg, dictionary, EngineConfig(pool_size=1))
        try:
            response = engine.ask(BERLIN_Q, deadline_s=1e-9)
            assert response["terminated_by"] == "deadline"
            # The cut-short result must not poison the cache: the next
            # uncontended request recomputes at full quality.
            follow_up = engine.ask(BERLIN_Q)
            assert follow_up["cached"] is False
            assert follow_up["terminated_by"] != "deadline"
            assert follow_up["answers"]
            counters = engine.metrics.snapshot()["counters"]
            assert counters["serve.deadline_expired"] == 1
        finally:
            engine.close()


class TestDegradation:
    def test_pressure_threshold_degrades_and_skips_cache(self, kg, dictionary):
        # degrade_pressure=0.0 makes every request degraded — the
        # deterministic way to exercise the degraded pipeline.
        engine = QAEngine(
            kg, dictionary,
            EngineConfig(pool_size=1, degrade_pressure=0.0, degraded_k=2),
        )
        try:
            response = engine.ask(BERLIN_Q)
            assert response["degraded"] is True
            assert response["answers"]  # degraded, not broken
            assert engine.ask(BERLIN_Q)["cached"] is False  # never cached
            counters = engine.metrics.snapshot()["counters"]
            assert counters["serve.degraded"] == 2
        finally:
            engine.close()


class TestStats:
    def test_stats_shape(self, engine):
        stats = engine.stats()
        for key in ("store_version", "uptime_s", "ready", "config",
                    "answer_cache", "link_cache", "admission", "kernel"):
            assert key in stats
        assert stats["ready"] is True
        assert stats["admission"]["capacity"] == (
            engine.config.pool_size + engine.config.queue_limit
        )

    def test_closed_engine_rejects_work(self, kg, dictionary):
        engine = QAEngine(kg, dictionary, EngineConfig(pool_size=1))
        engine.close()
        assert engine.ready is False
        with pytest.raises(EngineClosedError):
            engine.ask(BERLIN_Q)
