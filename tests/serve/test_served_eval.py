"""The served evaluation path must score exactly like the direct pipeline."""

import pytest

from repro.core import GAnswer
from repro.datasets import qald_questions
from repro.eval.harness import evaluate_engine, evaluate_system
from repro.serve import EngineConfig, QAEngine

#: A prefix of the benchmark keeps the double evaluation quick while still
#: covering right/partial/failed questions.
SUBSET = 30


@pytest.fixture(scope="module")
def subset():
    return qald_questions()[:SUBSET]


class TestServedEvaluation:
    def test_summary_identical_to_direct_run(self, kg, dictionary, subset):
        direct = evaluate_system(GAnswer(kg, dictionary), subset, "direct")
        engine = QAEngine(kg, dictionary, EngineConfig(pool_size=2, queue_limit=8))
        try:
            served = evaluate_engine(engine, subset, "served")
        finally:
            engine.close()

        assert served.summary == direct.summary
        assert served.failure_counts() == direct.failure_counts()
        for direct_outcome, served_outcome in zip(direct.outcomes, served.outcomes):
            assert [str(t) for t in served_outcome.answers] == [
                str(t) for t in direct_outcome.answers
            ]
            assert served_outcome.boolean == direct_outcome.boolean

    def test_served_run_exercises_the_engine(self, kg, dictionary, subset):
        engine = QAEngine(kg, dictionary, EngineConfig(pool_size=2, queue_limit=8))
        try:
            evaluate_engine(engine, subset, "served")
            counters = engine.metrics.snapshot()["counters"]
            assert counters["serve.requests"] == len(subset)
            assert engine.admission.stats()["admitted"] == len(subset)
        finally:
            engine.close()
