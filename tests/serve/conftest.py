"""Shared fixtures for serving-layer tests: warm KG, dictionary, engine.

Session-scoped because dictionary mining walks the whole graph; engines
built on top are cheap (the KG's kernel and the linker index are shared
state) but each test that mutates engine state builds its own.
"""

import pytest

from repro.datasets import build_dbpedia_mini, build_phrase_dataset
from repro.paraphrase import ParaphraseMiner
from repro.serve import EngineConfig, QAEngine


@pytest.fixture(scope="session")
def kg():
    return build_dbpedia_mini()


@pytest.fixture(scope="session")
def dictionary(kg):
    return ParaphraseMiner(kg, max_path_length=4, top_k=3).mine(build_phrase_dataset())


@pytest.fixture(scope="session")
def engine(kg, dictionary):
    """One warm shared engine for read-only request tests."""
    built = QAEngine(kg, dictionary, EngineConfig(pool_size=2, queue_limit=4))
    built.warm()
    yield built
    built.close()
