"""Smoke tests for the experiment drivers (the benchmarks run them fully;
these check importability, shapes, and the cheap invariants)."""

import pytest

from repro.experiments.common import ExperimentResult, default_setup


class TestCommon:
    def test_default_setup_cached(self):
        assert default_setup(0) is default_setup(0)

    def test_distractor_setups_distinct(self):
        assert default_setup(0) is not default_setup(2)

    def test_result_render(self):
        result = ExperimentResult("x", "Title", ["a", "b"], [[1, 2.5]], ["note"])
        text = result.render()
        assert "Title" in text
        assert "2.50" in text
        assert "note" in text


class TestOfflineDrivers:
    def test_table4(self):
        from repro.experiments.offline import table4_graph_statistics

        result = table4_graph_statistics()
        assert result.experiment_id == "table4"
        assert len(result.rows) == 3

    def test_table5(self):
        from repro.experiments.offline import table5_phrase_statistics

        result = table5_phrase_statistics()
        assert len(result.rows) == 4

    def test_tfidf_ablation_shape(self):
        from repro.experiments.offline import tfidf_ablation

        result = tfidf_ablation()
        assert [row[3] for row in result.rows] == ["no", "yes"]

    def test_precision_by_length_degrades(self):
        from repro.experiments.offline import precision_by_length

        curve = precision_by_length()
        assert curve[1] > curve[max(curve)]


class TestOnlineDrivers:
    def test_table10_ratios_sum_to_one(self):
        from repro.experiments.online import table10_failure_analysis

        result = table10_failure_analysis()
        ratios = [float(row[2].rstrip("%")) for row in result.rows]
        assert sum(ratios) == pytest.approx(100, abs=3)

    def test_table11_has_32_rows(self):
        from repro.experiments.online import table11_answered_questions

        assert len(table11_answered_questions().rows) == 32

    def test_paper_constants_importable(self):
        from repro.experiments import paper

        assert paper.TABLE8["Our Method"][1] == 32
        assert paper.TABLE8["DEANNA"][1] == 21
        assert len(paper.TABLE11_QUESTION_IDS) == 32
