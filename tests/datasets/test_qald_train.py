"""Tests for the QALD training split."""

import pytest

from repro.datasets.qald import qald_questions, qald_train_questions


class TestTrainSplit:
    def test_30_questions(self):
        assert len(qald_train_questions()) == 30

    def test_ids_disjoint_from_test_split(self):
        train_ids = {q.qid for q in qald_train_questions()}
        test_ids = {q.qid for q in qald_questions()}
        assert not train_ids & test_ids

    def test_texts_disjoint_from_test_split(self):
        train_texts = {q.text for q in qald_train_questions()}
        test_texts = {q.text for q in qald_questions()}
        assert not train_texts & test_texts

    def test_mostly_answerable(self):
        rights = [q for q in qald_train_questions() if q.category == "right"]
        assert len(rights) >= 25  # a tuning split needs signal

    def test_gold_present(self):
        for question in qald_train_questions():
            assert question.gold or question.is_boolean

    def test_multi_hop_question_present(self):
        # The θ-sweep depends on at least one 2-hop question (Q126).
        texts = [q.text for q in qald_train_questions()]
        assert any("players in the Premier League" in t for t in texts)


class TestTrainEvaluation:
    @pytest.fixture(scope="class")
    def run(self):
        from repro.core import GAnswer
        from repro.datasets import build_dbpedia_mini, build_phrase_dataset
        from repro.eval import evaluate_system
        from repro.paraphrase import ParaphraseMiner

        kg = build_dbpedia_mini()
        dictionary = ParaphraseMiner(kg, max_path_length=4, top_k=3).mine(
            build_phrase_dataset()
        )
        return evaluate_system(
            GAnswer(kg, dictionary), qald_train_questions(), "train"
        )

    def test_expected_right_count(self, run):
        assert run.summary.right == 29

    def test_known_failure_is_the_population_question(self, run):
        wrong = [o for o in run.outcomes if not o.score.is_right]
        assert [o.question.qid for o in wrong] == [127]
