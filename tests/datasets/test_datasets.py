"""Tests for the dataset builders: KG, phrase dataset, questions, synthetic."""

import pytest

from repro.datasets import (
    QALDQuestion,
    SyntheticConfig,
    build_dbpedia_mini,
    build_noisy_phrase_dataset,
    build_phrase_dataset,
    build_synthetic_kg,
    qald_questions,
)
from repro.datasets.dbpedia_mini import ont, res
from repro.datasets.patty_sim import scale_phrase_dataset
from repro.datasets.qald import questions_by_category
from repro.datasets.synthetic import entity_pool
from repro.rdf import IRI, RDF_TYPE, Triple


class TestDBpediaMini:
    def test_deterministic(self):
        first = build_dbpedia_mini().store.statistics()
        second = build_dbpedia_mini().store.statistics()
        assert first == second

    def test_running_example_present(self):
        kg = build_dbpedia_mini()
        assert Triple(
            res("Antonio_Banderas"), ont("spouse"), res("Melanie_Griffith")
        ) in kg.store

    def test_philadelphia_ambiguity(self):
        kg = build_dbpedia_mini()
        labels = {
            kg.label_of(kg.id_of(res(name)))
            for name in ("Philadelphia", "Philadelphia_(film)")
        }
        assert labels == {"Philadelphia"}  # two nodes, one surface label

    def test_classes_detected(self):
        kg = build_dbpedia_mini()
        assert kg.is_class(kg.id_of(res("Actor")))
        assert kg.is_entity(kg.id_of(res("Antonio_Banderas")))

    def test_subclass_hierarchy(self):
        kg = build_dbpedia_mini()
        banderas = kg.id_of(res("Antonio_Banderas"))
        assert kg.has_type(banderas, kg.id_of(res("Person")))

    def test_mi6_trap_label(self):
        # The entity exists but is never labelled "MI6" (Table 10 trap).
        kg = build_dbpedia_mini()
        sis = kg.id_of(res("Secret_Intelligence_Service"))
        assert sis is not None
        assert all("mi6" not in label.lower() for label in kg.all_labels(sis))

    def test_distractor_padding(self):
        plain = build_dbpedia_mini()
        padded = build_dbpedia_mini(distractors_per_entity=3)
        assert len(padded.store) > len(plain.store)
        clone = padded.id_of(IRI("res:Berlin__clone0"))
        assert clone is not None
        assert padded.label_of(clone) == "Berlin"

    def test_distractors_have_no_domain_facts(self):
        padded = build_dbpedia_mini(distractors_per_entity=2)
        clone = padded.id_of(IRI("res:Berlin__clone0"))
        predicates = {
            padded.iri_of(e.predicate).local_name
            for e in padded.edges(clone, include_literals=True)
        }
        assert predicates <= {"distractorNote"}


class TestPhraseDataset:
    def test_curated_pairs_exist_in_graph(self):
        kg = build_dbpedia_mini()
        dataset = build_phrase_dataset()
        located = 0
        total = 0
        for pairs in dataset.support.values():
            for left, right in pairs:
                total += 1
                left_ok = kg.id_of(left) is not None or (
                    not isinstance(left, IRI)
                    and kg.literal_ids_by_lexical(left.lexical)
                )
                right_ok = kg.id_of(right) is not None or (
                    not isinstance(right, IRI)
                    and kg.literal_ids_by_lexical(right.lexical)
                )
                if left_ok and right_ok:
                    located += 1
        assert located == total  # the curated dataset is fully aligned

    def test_withheld_phrases_absent(self):
        from repro.datasets.patty_sim import WITHHELD_PHRASES

        dataset = build_phrase_dataset()
        for phrase in WITHHELD_PHRASES:
            assert phrase not in dataset.support

    def test_noisy_dataset_located_fraction(self):
        """About a third of the noisy pairs miss the graph — the Patty
        statistic the paper reports (67 % located)."""
        from repro.paraphrase import ParaphraseMiner

        kg = build_dbpedia_mini()
        noisy = build_noisy_phrase_dataset(extra_phrases=20)
        miner = ParaphraseMiner(kg, max_path_length=2)
        miner.mine(noisy)
        assert 0.4 < miner.last_report.located_fraction < 0.9

    def test_noisy_dataset_deterministic(self):
        first = build_noisy_phrase_dataset(seed=3)
        second = build_noisy_phrase_dataset(seed=3)
        assert first.support.keys() == second.support.keys()

    def test_statistics_shape(self):
        stats = build_phrase_dataset().statistics()
        assert stats["relation_phrases"] > 30
        assert stats["avg_pairs_per_phrase"] >= 1.0

    def test_scaling(self):
        kg = build_synthetic_kg(SyntheticConfig(entities=50, seed=1))
        pool = entity_pool(kg)
        scaled = scale_phrase_dataset(build_phrase_dataset(), 100, 5, pool)
        assert len(scaled) == len(build_phrase_dataset()) + 100


class TestQALD:
    def test_99_questions(self):
        assert len(qald_questions()) == 99

    def test_ids_unique_and_sorted(self):
        questions = qald_questions()
        ids = [q.qid for q in questions]
        assert ids == sorted(ids)
        assert len(set(ids)) == 99

    def test_table11_questions_present(self):
        by_id = {q.qid: q for q in qald_questions()}
        for qid in (2, 3, 14, 17, 19, 20, 21, 22, 24, 27, 28, 30, 35, 39, 41,
                    42, 44, 45, 54, 58, 63, 70, 74, 76, 77, 81, 83, 84, 86,
                    89, 98, 100):
            assert by_id[qid].category == "right"

    def test_right_count_is_32(self):
        grouped = questions_by_category()
        assert len(grouped["right"]) == 32

    def test_category_proportions_match_table10(self):
        # Aggregation is the largest failure class, then linking, then
        # relation extraction — the paper's Table 10 ordering.
        grouped = questions_by_category()
        assert (
            len(grouped["aggregation"])
            > len(grouped["entity_linking"])
            > len(grouped["relation_extraction"])
            > len(grouped["other"])
        )

    def test_boolean_questions_marked(self):
        booleans = [q for q in qald_questions() if q.is_boolean]
        assert booleans
        for question in booleans:
            assert question.gold == frozenset()

    def test_non_boolean_have_gold(self):
        for question in qald_questions():
            if not question.is_boolean:
                assert question.gold


class TestSynthetic:
    def test_deterministic_under_seed(self):
        a = build_synthetic_kg(SyntheticConfig(entities=100, seed=5))
        b = build_synthetic_kg(SyntheticConfig(entities=100, seed=5))
        assert a.store.statistics() == b.store.statistics()
        assert set(a.store.triples()) == set(b.store.triples())

    def test_different_seed_different_graph(self):
        a = build_synthetic_kg(SyntheticConfig(entities=100, seed=5))
        b = build_synthetic_kg(SyntheticConfig(entities=100, seed=6))
        assert set(a.store.triples()) != set(b.store.triples())

    def test_every_entity_typed_and_labelled(self):
        kg = build_synthetic_kg(SyntheticConfig(entities=30))
        for node in entity_pool(kg):
            node_id = kg.id_of(node)
            assert kg.types_of(node_id)
            assert kg.label_of(node_id)

    def test_scale_parameters(self):
        small = build_synthetic_kg(SyntheticConfig(entities=50, triples_per_entity=2))
        large = build_synthetic_kg(SyntheticConfig(entities=500, triples_per_entity=2))
        assert len(large.store) > len(small.store)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            SyntheticConfig(entities=0)
        with pytest.raises(ValueError):
            SyntheticConfig(triples_per_entity=0)
