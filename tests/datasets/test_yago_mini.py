"""Tests for the YAGO2-style second knowledge base (generalization)."""

import pytest

from repro.core import GAnswer
from repro.datasets.yago_mini import (
    build_yago_mini,
    yago,
    yago_phrase_dataset,
    yago_questions,
)
from repro.eval.metrics import term_to_gold
from repro.paraphrase import ParaphraseMiner


@pytest.fixture(scope="module")
def yago_system():
    kg = build_yago_mini()
    dictionary = ParaphraseMiner(kg, max_path_length=4, top_k=3).mine(
        yago_phrase_dataset()
    )
    return GAnswer(kg, dictionary)


class TestKnowledgeBase:
    def test_deterministic(self):
        assert (
            build_yago_mini().store.statistics()
            == build_yago_mini().store.statistics()
        )

    def test_subclass_hierarchy(self):
        kg = build_yago_mini()
        einstein = kg.id_of(yago("Albert_Einstein"))
        assert kg.has_type(einstein, kg.id_of(yago("Scientist")))

    def test_vocabulary_disjoint_from_dbpedia_mini(self):
        from repro.datasets import build_dbpedia_mini

        yago_preds = {str(p) for p in build_yago_mini().store.predicates()}
        dbp_preds = {str(p) for p in build_dbpedia_mini().store.predicates()}
        domain_yago = {p for p in yago_preds if p.startswith("yago:")}
        assert domain_yago
        assert not domain_yago & dbp_preds

    def test_questions_have_gold(self):
        questions = yago_questions()
        assert len(questions) == 20
        for question in questions:
            assert question.gold


class TestGeneralization:
    """The same untouched pipeline answers a different KB's questions."""

    def test_all_20_questions_answered_exactly(self, yago_system):
        for question in yago_questions():
            result = yago_system.answer(question.text)
            produced = frozenset(term_to_gold(t) for t in result.answers)
            assert produced == question.gold, (
                f"{question.text}: {sorted(produced)} != {sorted(question.gold)}"
            )

    def test_multi_hop_comes_from(self, yago_system):
        # "comes from" mines the 2-hop wasBornIn·isLocatedIn path.
        result = yago_system.answer("Which country does Marie Curie come from?")
        assert [str(a) for a in result.answers] == ["yago:Poland"]

    def test_longest_match_linking(self, yago_system):
        # "Nobel Prize in Chemistry" must link as one mention despite the
        # embedded preposition.
        result = yago_system.answer("Who won the Nobel Prize in Chemistry?")
        assert [str(a) for a in result.answers] == ["yago:Marie_Curie"]

    def test_chained_relation(self, yago_system):
        result = yago_system.answer("Where was the wife of Pierre Curie born?")
        assert [str(a) for a in result.answers] == ["yago:Warsaw"]

    def test_class_constrained_subject(self, yago_system):
        result = yago_system.answer(
            "Which physicists won the Nobel Prize in Physics?"
        )
        names = sorted(str(a) for a in result.answers)
        assert names == [
            "yago:Albert_Einstein", "yago:Marie_Curie", "yago:Max_Planck",
            "yago:Niels_Bohr", "yago:Pierre_Curie",
        ]
