"""Tests for the label index and entity linker on an ambiguous graph."""

import pytest

from repro.linking import EntityLinker, LabelIndex
from repro.linking.index import normalize_label
from repro.rdf import (
    IRI,
    KnowledgeGraph,
    Literal,
    RDF_TYPE,
    RDFS_LABEL,
    Triple,
    TripleStore,
)


@pytest.fixture(scope="module")
def kg():
    """The paper's ambiguity setup: three Philadelphias, actor class."""
    store = TripleStore()
    e = lambda name: IRI(f"ex:{name}")

    def entity(name, label, *, cls=None):
        store.add(Triple(e(name), RDFS_LABEL, Literal(label)))
        if cls is not None:
            store.add(Triple(e(name), RDF_TYPE, e(cls)))

    entity("Philadelphia", "Philadelphia", cls="City")
    entity("Philadelphia_(film)", "Philadelphia (film)", cls="Film")
    entity("Philadelphia_76ers", "Philadelphia 76ers", cls="BasketballTeam")
    entity("Antonio_Banderas", "Antonio Banderas", cls="Actor")
    entity("An_Actor_Prepares", "An Actor Prepares", cls="Book")
    entity("Queen_Elizabeth_II", "Queen Elizabeth II", cls="Person")
    store.add(Triple(e("Queen_Elizabeth_II"), RDFS_LABEL, Literal("Elizabeth II")))
    store.add(Triple(e("Actor"), RDFS_LABEL, Literal("actor")))
    store.add(Triple(e("City"), RDFS_LABEL, Literal("city")))
    # Make the city prominent: several incident facts.
    for i in range(6):
        store.add(Triple(e(f"Suburb{i}"), e("locatedIn"), e("Philadelphia")))
    store.add(
        Triple(e("Antonio_Banderas"), e("starring"), e("Philadelphia_(film)"))
    )
    return KnowledgeGraph(store)


def ids(kg, candidates):
    return [kg.iri_of(c.node_id).local_name for c in candidates]


class TestNormalization:
    def test_strips_parenthetical(self):
        assert normalize_label("Philadelphia (film)") == "philadelphia"

    def test_underscores_and_case(self):
        assert normalize_label("Antonio_Banderas") == "antonio banderas"

    def test_punctuation(self):
        assert normalize_label("U.S. state!") == "us state"


class TestLabelIndex:
    def test_exact_finds_all_homonyms(self, kg):
        index = LabelIndex(kg)
        entries = index.exact("Philadelphia")
        assert {e.node_id for e in entries} == {
            kg.id_of(IRI("ex:Philadelphia")),
            kg.id_of(IRI("ex:Philadelphia_(film)")),
        }

    def test_exact_with_plural_phrase(self, kg):
        index = LabelIndex(kg)
        assert index.exact("actors")  # singularized to the class label

    def test_by_words_partial(self, kg):
        index = LabelIndex(kg)
        entries = index.by_words("Philadelphia")
        node_ids = {e.node_id for e in entries}
        assert kg.id_of(IRI("ex:Philadelphia_76ers")) in node_ids

    def test_alternate_labels_indexed(self, kg):
        index = LabelIndex(kg)
        entries = index.exact("Elizabeth II")
        assert kg.id_of(IRI("ex:Queen_Elizabeth_II")) in {e.node_id for e in entries}

    def test_class_flag(self, kg):
        index = LabelIndex(kg)
        (actor_entry,) = [e for e in index.exact("actor") if e.is_class]
        assert actor_entry.node_id == kg.id_of(IRI("ex:Actor"))


class TestEntityLinker:
    def test_ambiguous_phrase_returns_multiple_candidates(self, kg):
        linker = EntityLinker(kg)
        candidates = linker.link("Philadelphia")
        names = ids(kg, candidates)
        assert "Philadelphia" in names
        assert "Philadelphia_(film)" in names
        assert "Philadelphia_76ers" in names

    def test_exact_match_outranks_partial(self, kg):
        linker = EntityLinker(kg)
        candidates = linker.link("Philadelphia")
        exact = [c for c in candidates if c.label in ("Philadelphia", "Philadelphia (film)")]
        partial = [c for c in candidates if c.label == "Philadelphia 76ers"]
        assert min(c.score for c in exact) > max(c.score for c in partial)

    def test_prominence_ranks_city_over_film(self, kg):
        linker = EntityLinker(kg)
        names = ids(kg, linker.link("Philadelphia"))
        assert names.index("Philadelphia") < names.index("Philadelphia_(film)")

    def test_class_and_entity_for_actor(self, kg):
        # Section 4.2.1: "actor" links to class <Actor> and the entity
        # <An_Actor_Prepares>.
        linker = EntityLinker(kg)
        candidates = linker.link("actor")
        kinds = {(kg.iri_of(c.node_id).local_name, c.is_class) for c in candidates}
        assert ("Actor", True) in kinds
        assert ("An_Actor_Prepares", False) in kinds

    def test_scores_are_probabilities(self, kg):
        linker = EntityLinker(kg)
        for phrase in ("Philadelphia", "actor", "Antonio Banderas"):
            for candidate in linker.link(phrase):
                assert 0.0 < candidate.score <= 1.0

    def test_unknown_phrase_empty(self, kg):
        linker = EntityLinker(kg)
        assert linker.link("Zorblax Quux") == []

    def test_empty_phrase(self, kg):
        assert EntityLinker(kg).link("") == []

    def test_max_candidates_respected(self, kg):
        linker = EntityLinker(kg, max_candidates=2)
        assert len(linker.link("Philadelphia")) == 2

    def test_multiword_exact(self, kg):
        linker = EntityLinker(kg)
        candidates = linker.link("Antonio Banderas")
        assert ids(kg, candidates)[0] == "Antonio_Banderas"

    def test_alternate_label_links(self, kg):
        linker = EntityLinker(kg)
        names = ids(kg, linker.link("Elizabeth II"))
        assert names[0] == "Queen_Elizabeth_II"

    def test_min_score_filters_weak_partials(self, kg):
        strict = EntityLinker(kg, min_score=0.99)
        names = ids(kg, strict.link("Philadelphia"))
        assert "Philadelphia_76ers" not in names
