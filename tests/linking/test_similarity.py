"""Tests for string similarity measures."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linking.similarity import (
    combined_similarity,
    dice_coefficient,
    jaccard_words,
    normalized_edit_similarity,
)

_words = st.text(alphabet="abcdefg ", min_size=0, max_size=15)


class TestDice:
    def test_identical(self):
        assert dice_coefficient("philadelphia", "philadelphia") == 1.0

    def test_disjoint(self):
        assert dice_coefficient("xyz", "abc") == 0.0

    def test_empty(self):
        assert dice_coefficient("", "abc") == 0.0

    def test_case_insensitive(self):
        assert dice_coefficient("Berlin", "berlin") == 1.0

    def test_partial_overlap_between_zero_and_one(self):
        score = dice_coefficient("philadelphia", "philadelphia 76ers")
        assert 0.0 < score < 1.0


class TestJaccard:
    def test_identical(self):
        assert jaccard_words("queen elizabeth ii", "queen elizabeth ii") == 1.0

    def test_subset(self):
        assert jaccard_words("elizabeth ii", "queen elizabeth ii") == pytest.approx(2 / 3)

    def test_empty(self):
        assert jaccard_words("", "anything") == 0.0


class TestEditSimilarity:
    def test_identical(self):
        assert normalized_edit_similarity("intel", "intel") == 1.0

    def test_one_edit(self):
        assert normalized_edit_similarity("intel", "intell") == pytest.approx(1 - 1 / 6)

    def test_completely_different(self):
        assert normalized_edit_similarity("aaaa", "bbbb") == 0.0

    def test_empty_vs_nonempty(self):
        assert normalized_edit_similarity("", "abc") == 0.0


@settings(max_examples=60, deadline=None)
@given(_words, _words)
def test_all_measures_bounded_and_symmetric(left, right):
    for measure in (dice_coefficient, jaccard_words, normalized_edit_similarity,
                    combined_similarity):
        score = measure(left, right)
        assert 0.0 <= score <= 1.0 + 1e-12
        assert score == pytest.approx(measure(right, left))


@settings(max_examples=40, deadline=None)
@given(_words)
def test_identity_is_maximal(text):
    if text.strip():
        assert combined_similarity(text, text) == pytest.approx(1.0)
