"""Tests for simple-path enumeration (the offline BFS of Section 3)."""

import pytest

from repro.paraphrase import find_simple_paths
from repro.rdf import IRI, KnowledgeGraph, Triple, TripleStore
from repro.rdf.graph import backward_step, forward_step


def build_kg(edges):
    store = TripleStore()
    for s, p, o in edges:
        store.add(Triple(IRI(f"ex:{s}"), IRI(f"ex:{p}"), IRI(f"ex:{o}")))
    return KnowledgeGraph(store)


def pid(kg, name):
    return kg.id_of(IRI(f"ex:{name}"))


def nid(kg, name):
    return kg.id_of(IRI(f"ex:{name}"))


class TestDirectEdges:
    def test_single_forward_edge(self):
        kg = build_kg([("a", "p", "b")])
        paths = find_simple_paths(kg, nid(kg, "a"), nid(kg, "b"), 4)
        assert paths == {(forward_step(pid(kg, "p")),)}

    def test_single_backward_edge(self):
        kg = build_kg([("b", "p", "a")])
        paths = find_simple_paths(kg, nid(kg, "a"), nid(kg, "b"), 4)
        assert paths == {(backward_step(pid(kg, "p")),)}

    def test_no_connection(self):
        kg = build_kg([("a", "p", "b"), ("c", "p", "d")])
        assert find_simple_paths(kg, nid(kg, "a"), nid(kg, "c"), 4) == set()

    def test_same_node(self):
        kg = build_kg([("a", "p", "b")])
        assert find_simple_paths(kg, nid(kg, "a"), nid(kg, "a"), 4) == set()

    def test_zero_length_threshold(self):
        kg = build_kg([("a", "p", "b")])
        assert find_simple_paths(kg, nid(kg, "a"), nid(kg, "b"), 0) == set()


class TestMultiHop:
    def test_uncle_of_pattern(self):
        # The paper's Figure 4: uncle = hasChild⁻¹ · hasChild · hasChild,
        # i.e. grandparent's other child's child.
        kg = build_kg(
            [
                ("grandpa", "hasChild", "ted"),
                ("grandpa", "hasChild", "bob"),
                ("bob", "hasChild", "junior"),
            ]
        )
        paths = find_simple_paths(kg, nid(kg, "ted"), nid(kg, "junior"), 3)
        child = pid(kg, "hasChild")
        expected = (backward_step(child), forward_step(child), forward_step(child))
        assert expected in paths

    def test_length_threshold_enforced(self):
        kg = build_kg(
            [
                ("a", "p", "b"),
                ("b", "p", "c"),
                ("c", "p", "d"),
                ("d", "p", "e"),
                ("e", "p", "f"),
            ]
        )
        assert find_simple_paths(kg, nid(kg, "a"), nid(kg, "f"), 4) == set()
        assert len(find_simple_paths(kg, nid(kg, "a"), nid(kg, "f"), 5)) == 1

    def test_multiple_distinct_paths(self):
        kg = build_kg(
            [
                ("a", "p", "b"),
                ("a", "q", "m"),
                ("m", "r", "b"),
            ]
        )
        paths = find_simple_paths(kg, nid(kg, "a"), nid(kg, "b"), 2)
        assert len(paths) == 2

    def test_simplicity_no_revisit(self):
        # a→b→a→b would revisit; only the direct edge may be returned.
        kg = build_kg([("a", "p", "b"), ("b", "q", "a")])
        paths = find_simple_paths(kg, nid(kg, "a"), nid(kg, "b"), 3)
        p, q = pid(kg, "p"), pid(kg, "q")
        assert paths == {(forward_step(p),), (backward_step(q),)}

    def test_parallel_routes_same_pattern_collapse(self):
        # Two different middle nodes, same predicate sequence → one pattern.
        kg = build_kg(
            [
                ("a", "p", "m1"), ("m1", "q", "b"),
                ("a", "p", "m2"), ("m2", "q", "b"),
            ]
        )
        paths = find_simple_paths(kg, nid(kg, "a"), nid(kg, "b"), 2)
        assert paths == {(forward_step(pid(kg, "p")), forward_step(pid(kg, "q")))}

    def test_structural_predicates_excluded(self):
        from repro.rdf import RDF_TYPE
        store = TripleStore()
        store.add(Triple(IRI("ex:a"), RDF_TYPE, IRI("ex:C")))
        store.add(Triple(IRI("ex:b"), RDF_TYPE, IRI("ex:C")))
        kg = KnowledgeGraph(store)
        a, b = kg.id_of(IRI("ex:a")), kg.id_of(IRI("ex:b"))
        assert find_simple_paths(kg, a, b, 4) == set()

    def test_path_walkable(self):
        """Every returned path must actually connect the two endpoints when
        re-walked directionally."""
        kg = build_kg(
            [
                ("a", "p", "b"),
                ("c", "q", "b"),
                ("c", "r", "d"),
                ("a", "s", "d"),
            ]
        )
        source, target = nid(kg, "a"), nid(kg, "d")
        for path in find_simple_paths(kg, source, target, 4):
            assert kg.path_connects(source, target, path)
