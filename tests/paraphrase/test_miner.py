"""Tests for tf-idf scoring, Algorithm 1, and dictionary maintenance."""

import math

import pytest

from repro.paraphrase import (
    ParaphraseDictionary,
    ParaphraseMiner,
    PredicateMapping,
    RelationPhraseDataset,
    normalize_phrase,
)
from repro.paraphrase.tfidf import idf_value, tf_idf_value, tf_value
from repro.rdf import IRI, KnowledgeGraph, Triple, TripleStore
from repro.rdf.graph import backward_step, forward_step


def e(name):
    return IRI(f"ex:{name}")


@pytest.fixture
def family_kg():
    """Small family/gender graph reproducing the Figure 4 noise situation."""
    store = TripleStore()
    triples = [
        # Kennedy-style uncle structure, twice for support.
        ("grandpaA", "hasChild", "tedA"), ("grandpaA", "hasChild", "bobA"),
        ("bobA", "hasChild", "juniorA"),
        ("grandpaB", "hasChild", "tedB"), ("grandpaB", "hasChild", "bobB"),
        ("bobB", "hasChild", "juniorB"),
        # Spouse facts.
        ("tedA", "spouse", "wifeA"), ("tedB", "spouse", "wifeB"),
        # Noise in the style of the paper's (hasGender, hasGender⁻¹):
        # everyone lives in the same country, so (livesIn, livesIn⁻¹)
        # connects the entity pairs of *every* relation phrase.
        ("tedA", "livesIn", "usa"), ("juniorA", "livesIn", "usa"),
        ("tedB", "livesIn", "usa"), ("juniorB", "livesIn", "usa"),
        ("wifeA", "livesIn", "usa"), ("wifeB", "livesIn", "usa"),
    ]
    for s, p, o in triples:
        store.add(Triple(e(s), e(p), e(o)))
    return KnowledgeGraph(store)


@pytest.fixture
def uncle_dataset():
    dataset = RelationPhraseDataset()
    dataset.add("uncle of", [(e("tedA"), e("juniorA")), (e("tedB"), e("juniorB"))])
    dataset.add("is married to", [(e("tedA"), e("wifeA")), (e("tedB"), e("wifeB"))])
    return dataset


class TestNormalizePhrase:
    def test_be_forms_collapse(self):
        assert normalize_phrase("was married to") == normalize_phrase("be married to")

    def test_verb_inflections_collapse(self):
        assert normalize_phrase("plays in") == normalize_phrase("play in")

    def test_noun_words(self):
        assert normalize_phrase("children of") == ("child", "of")

    def test_result_is_tuple(self):
        assert normalize_phrase("uncle of") == ("uncle", "of")


class TestTfIdf:
    def test_tf_counts_supporting_pairs(self):
        path = (1,)
        sets = [{(1,), (2,)}, {(1,)}, {(3,)}]
        assert tf_value(path, sets) == 2

    def test_idf_penalizes_ubiquitous_paths(self):
        everywhere = {(9,)}
        corpus = {"a": {(9,), (1,)}, "b": {(9,), (2,)}, "c": {(9,)}}
        assert idf_value((9,), corpus) < idf_value((1,), corpus)

    def test_idf_formula(self):
        corpus = {"a": {(1,)}, "b": {(2,)}, "c": {(3,)}}
        assert idf_value((1,), corpus) == pytest.approx(math.log(3 / 2))

    def test_tf_idf_product(self):
        corpus = {"a": {(1,)}, "b": {(2,)}}
        sets = [{(1,)}, {(1,)}]
        assert tf_idf_value((1,), sets, corpus) == pytest.approx(
            2 * math.log(2 / 2)
        )


class TestMiner:
    def test_finds_uncle_path(self, family_kg, uncle_dataset):
        miner = ParaphraseMiner(family_kg, max_path_length=3, top_k=3)
        dictionary = miner.mine(uncle_dataset)
        mappings = dictionary.lookup(normalize_phrase("uncle of"))
        assert mappings
        child = family_kg.id_of(e("hasChild"))
        uncle_path = (
            backward_step(child), forward_step(child), forward_step(child)
        )
        assert mappings[0].path == uncle_path

    def test_tfidf_suppresses_shared_noise(self, family_kg, uncle_dataset):
        # The (livesIn, livesIn⁻¹) pattern occurs in the path sets of BOTH
        # phrases, so its idf — hence its tf-idf — is zero and it is dropped,
        # exactly the paper's (hasGender, hasGender) discussion.
        miner = ParaphraseMiner(family_kg, max_path_length=3, top_k=10)
        dictionary = miner.mine(uncle_dataset)
        lives_in = family_kg.id_of(e("livesIn"))
        noise_path = (forward_step(lives_in), backward_step(lives_in))
        paths = {m.path for m in dictionary.lookup(normalize_phrase("uncle of"))}
        assert noise_path not in paths

    def test_raw_tf_ablation_keeps_noise_competitive(self, family_kg, uncle_dataset):
        raw = ParaphraseMiner(family_kg, max_path_length=3, top_k=10, use_tfidf=False)
        dictionary = raw.mine(uncle_dataset)
        lives_in = family_kg.id_of(e("livesIn"))
        noise_path = (forward_step(lives_in), backward_step(lives_in))
        paths = {m.path for m in dictionary.lookup(normalize_phrase("uncle of"))}
        assert noise_path in paths

    def test_spouse_maps_to_single_predicate(self, family_kg, uncle_dataset):
        miner = ParaphraseMiner(family_kg, max_path_length=3, top_k=1)
        dictionary = miner.mine(uncle_dataset)
        (top,) = dictionary.lookup(normalize_phrase("is married to"))
        spouse = family_kg.id_of(e("spouse"))
        assert top.path == (forward_step(spouse),)
        assert top.is_single_predicate

    def test_confidences_normalized(self, family_kg, uncle_dataset):
        dictionary = ParaphraseMiner(family_kg, max_path_length=3, top_k=5).mine(uncle_dataset)
        for phrase in dictionary.phrases():
            mappings = dictionary.lookup(phrase)
            if mappings:
                assert mappings[0].confidence == pytest.approx(1.0)
                for mapping in mappings:
                    assert 0.0 < mapping.confidence <= 1.0

    def test_missing_pairs_tolerated(self, family_kg):
        dataset = RelationPhraseDataset()
        dataset.add("ghost of", [(e("nobody"), e("nothing"))])
        miner = ParaphraseMiner(family_kg, max_path_length=2)
        dictionary = miner.mine(dataset)
        assert dictionary.lookup(normalize_phrase("ghost of")) == []
        assert miner.last_report.located_fraction == 0.0

    def test_report_located_fraction(self, family_kg, uncle_dataset):
        miner = ParaphraseMiner(family_kg, max_path_length=2)
        miner.mine(uncle_dataset)
        assert miner.last_report.located_fraction == 1.0
        assert miner.last_report.pairs_total == 4

    def test_invalid_parameters(self, family_kg):
        from repro.exceptions import MiningError
        with pytest.raises(MiningError):
            ParaphraseMiner(family_kg, max_path_length=0)
        with pytest.raises(MiningError):
            ParaphraseMiner(family_kg, top_k=0)

    def test_theta_2_misses_uncle(self, family_kg, uncle_dataset):
        # The 3-hop uncle path needs θ ≥ 3 — the precision/θ trade-off
        # behind Table 7.
        dictionary = ParaphraseMiner(family_kg, max_path_length=2).mine(uncle_dataset)
        child = family_kg.id_of(e("hasChild"))
        for mapping in dictionary.lookup(normalize_phrase("uncle of")):
            assert len(mapping.path) <= 2


class TestDictionary:
    def test_lookup_ranked_by_confidence(self):
        d = ParaphraseDictionary()
        d.add(("play", "in"), [
            PredicateMapping((1,), 0.5),
            PredicateMapping((2,), 0.9),
        ])
        confidences = [m.confidence for m in d.lookup(("play", "in"))]
        assert confidences == sorted(confidences, reverse=True)

    def test_word_inverted_index(self):
        d = ParaphraseDictionary()
        d.add(("be", "marry", "to"), [PredicateMapping((1,), 1.0)])
        d.add(("play", "in"), [PredicateMapping((2,), 1.0)])
        assert d.phrases_containing("marry") == {("be", "marry", "to")}
        assert d.phrases_containing("in") == {("play", "in")}
        assert d.phrases_containing("zzz") == set()

    def test_empty_phrase_rejected(self):
        d = ParaphraseDictionary()
        with pytest.raises(ValueError):
            d.add((), [])

    def test_remove_predicate(self):
        d = ParaphraseDictionary()
        d.add(("play", "in"), [
            PredicateMapping((forward_step(7),), 1.0),
            PredicateMapping((forward_step(8),), 0.5),
        ])
        removed = d.remove_predicate(7)
        assert removed == 1
        remaining = d.lookup(("play", "in"))
        assert len(remaining) == 1
        assert remaining[0].path == (forward_step(8),)

    def test_json_roundtrip(self):
        d = ParaphraseDictionary()
        d.add(("uncle", "of"), [PredicateMapping((1, -2, 3), 0.8)])
        d.add(("play", "in"), [PredicateMapping((5,), 1.0)])
        restored = ParaphraseDictionary.from_json(d.to_json())
        assert restored.lookup(("uncle", "of")) == d.lookup(("uncle", "of"))
        assert restored.phrases_containing("play") == {("play", "in")}


class TestIncrementalMaintenance:
    def test_remine_for_new_predicate(self, family_kg, uncle_dataset):
        miner = ParaphraseMiner(family_kg, max_path_length=3, top_k=3)
        dictionary = miner.mine(uncle_dataset)
        # A new, better predicate appears: a direct uncleOf edge.
        family_kg.store.add(Triple(e("tedA"), e("uncleOf"), e("juniorA")))
        family_kg.store.add(Triple(e("tedB"), e("uncleOf"), e("juniorB")))
        family_kg.refresh()
        remined = miner.remine_for_predicates(
            uncle_dataset, dictionary, {e("uncleOf")}
        )
        assert remined >= 1
        uncle = family_kg.id_of(e("uncleOf"))
        top = dictionary.lookup(normalize_phrase("uncle of"))[0]
        assert top.path == (forward_step(uncle),)

    def test_remine_with_unknown_predicate_is_noop(self, family_kg, uncle_dataset):
        miner = ParaphraseMiner(family_kg, max_path_length=2)
        dictionary = miner.mine(uncle_dataset)
        assert miner.remine_for_predicates(uncle_dataset, dictionary, {e("nope")}) == 0
