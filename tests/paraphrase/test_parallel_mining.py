"""Parallel offline mining: identical output at any job count.

The miner's contract is that ``jobs`` is purely a wall-clock knob — the
mined dictionary must be byte-for-byte identical between the serial loop,
the fork-process pool, and the thread fallback, and the path counters must
aggregate to the same totals.
"""

import pytest

from repro import obs
from repro.datasets import SyntheticConfig, build_phrase_dataset, build_synthetic_kg
from repro.datasets.patty_sim import scale_phrase_dataset
from repro.datasets.synthetic import entity_pool
from repro.exceptions import MiningError
from repro.paraphrase import ParaphraseMiner


@pytest.fixture(scope="module")
def scenario():
    kg = build_synthetic_kg(
        SyntheticConfig(entities=300, triples_per_entity=4, predicates=15)
    )
    dataset = scale_phrase_dataset(build_phrase_dataset(), 40, 4, entity_pool(kg))
    return kg, dataset


def mine_json(kg, dataset, tracer=None, **kwargs):
    miner = ParaphraseMiner(kg, max_path_length=3, top_k=3, tracer=tracer, **kwargs)
    return miner.mine(dataset).to_json()


class TestParallelDeterminism:
    def test_process_pool_output_is_byte_identical(self, scenario):
        kg, dataset = scenario
        assert mine_json(kg, dataset, jobs=1) == mine_json(kg, dataset, jobs=2)

    def test_thread_fallback_output_is_byte_identical(self, scenario, monkeypatch):
        kg, dataset = scenario
        serial = mine_json(kg, dataset, jobs=1)

        import repro.paraphrase.miner as miner_module

        def no_fork(method):
            raise ValueError(f"cannot find context for {method!r}")

        monkeypatch.setattr(miner_module.multiprocessing, "get_context", no_fork)
        assert mine_json(kg, dataset, jobs=2) == serial

    def test_auto_jobs_output_is_byte_identical(self, scenario):
        kg, dataset = scenario
        assert mine_json(kg, dataset, jobs=0) == mine_json(kg, dataset, jobs=1)

    def test_negative_jobs_rejected(self, scenario):
        kg, _ = scenario
        with pytest.raises(MiningError):
            ParaphraseMiner(kg, jobs=-1)

    def test_counters_aggregate_like_serial(self, scenario):
        kg, dataset = scenario
        counts = {}
        for jobs in (1, 2):
            tracer = obs.Tracer()
            mine_json(kg, dataset, tracer=tracer, jobs=jobs)
            counters = tracer.metrics.snapshot()["counters"]
            counts[jobs] = (
                counters.get("mining.path_queries"),
                counters.get("mining.paths_enumerated"),
            )
        assert counts[1] == counts[2]
        assert counts[1][0] > 0

    def test_jobs_recorded_on_span(self, scenario):
        kg, dataset = scenario
        tracer = obs.Tracer()
        mine_json(kg, dataset, tracer=tracer, jobs=2)
        spans = [
            span
            for root in tracer.roots
            for span in root.walk()
            if span.name == "mining.collect_paths"
        ]
        assert spans and spans[0].attributes["jobs"] == 2
