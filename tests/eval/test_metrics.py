"""Tests for QALD scoring and failure classification."""

import pytest

from repro.datasets.qald import QALDQuestion
from repro.eval.metrics import (
    classify_failure,
    question_score,
    summarize,
    term_to_gold,
)
from repro.rdf import IRI, Literal


def q(gold=(), boolean=None, text="Who is the mayor of Berlin?", qid=1):
    return QALDQuestion(qid, text, frozenset(gold), boolean)


class TestTermToGold:
    def test_iri(self):
        assert term_to_gold(IRI("res:Berlin")) == "res:Berlin"

    def test_literal(self):
        assert term_to_gold(Literal("1.98")) == "1.98"


class TestQuestionScore:
    def test_exact_match(self):
        score = question_score(q(["res:A", "res:B"]), [IRI("res:A"), IRI("res:B")], None)
        assert score.is_right
        assert score.f1 == 1.0

    def test_partial_precision(self):
        score = question_score(q(["res:A"]), [IRI("res:A"), IRI("res:B")], None)
        assert score.is_partial
        assert score.precision == 0.5
        assert score.recall == 1.0

    def test_partial_recall(self):
        score = question_score(q(["res:A", "res:B"]), [IRI("res:A")], None)
        assert score.is_partial
        assert score.recall == 0.5

    def test_wrong(self):
        score = question_score(q(["res:A"]), [IRI("res:X")], None)
        assert score.answered
        assert score.f1 == 0.0
        assert not score.is_right and not score.is_partial

    def test_unanswered(self):
        score = question_score(q(["res:A"]), [], None)
        assert not score.answered
        assert score.f1 == 0.0

    def test_boolean_correct(self):
        score = question_score(q(boolean=True), [], True)
        assert score.is_right

    def test_boolean_wrong(self):
        score = question_score(q(boolean=True), [], False)
        assert score.answered
        assert not score.is_right

    def test_boolean_unanswered(self):
        score = question_score(q(boolean=True), [], None)
        assert not score.answered

    def test_literal_answers_compared_by_lexical(self):
        score = question_score(q(["1.98"]), [Literal("1.98")], None)
        assert score.is_right


class TestSummarize:
    def test_counts(self):
        scores = [
            question_score(q(["res:A"]), [IRI("res:A")], None),       # right
            question_score(q(["res:A"]), [IRI("res:A"), IRI("res:B")], None),  # partial
            question_score(q(["res:A"]), [], None),                   # unanswered
        ]
        summary = summarize(scores)
        assert summary.total == 3
        assert summary.processed == 2
        assert summary.right == 1
        assert summary.partial == 1

    def test_macro_average_includes_unanswered(self):
        scores = [
            question_score(q(["res:A"]), [IRI("res:A")], None),
            question_score(q(["res:A"]), [], None),
        ]
        summary = summarize(scores)
        assert summary.precision == pytest.approx(0.5)
        assert summary.recall == pytest.approx(0.5)

    def test_empty(self):
        summary = summarize([])
        assert summary.total == 0
        assert summary.f1 == 0.0


class TestClassifyFailure:
    def test_right_is_none(self):
        score = question_score(q(["res:A"]), [IRI("res:A")], None)
        assert classify_failure(q(["res:A"]), score, None) is None

    def test_aggregation_wins_over_pipeline_tag(self):
        question = q(["res:A"], text="Who is the youngest player in the league?")
        score = question_score(question, [], None)
        assert classify_failure(question, score, "relation_extraction") == "aggregation"

    def test_linking(self):
        question = q(["res:A"])
        score = question_score(question, [], None)
        assert classify_failure(question, score, "entity_linking") == "entity_linking"

    def test_relation(self):
        question = q(["res:A"])
        score = question_score(question, [], None)
        assert classify_failure(question, score, "relation_extraction") == "relation_extraction"

    def test_partial_class(self):
        question = q(["res:A"])
        score = question_score(question, [IRI("res:A"), IRI("res:B")], None)
        assert classify_failure(question, score, None) == "partial"

    def test_other(self):
        question = q(["res:A"])
        score = question_score(question, [], None)
        assert classify_failure(question, score, "no_match") == "other"


class TestHarness:
    def test_end_to_end_run(self):
        from repro.core import GAnswer
        from repro.datasets import build_dbpedia_mini, build_phrase_dataset, qald_questions
        from repro.eval import evaluate_system
        from repro.paraphrase import ParaphraseMiner

        kg = build_dbpedia_mini()
        dictionary = ParaphraseMiner(kg, max_path_length=4, top_k=3).mine(
            build_phrase_dataset()
        )
        questions = qald_questions()[:10]
        run = evaluate_system(GAnswer(kg, dictionary), questions, "gAnswer")
        assert len(run.outcomes) == 10
        assert run.summary.total == 10
        assert run.outcome_for(questions[0].qid).question is questions[0]
        with pytest.raises(KeyError):
            run.outcome_for(12345)

    def test_format_table(self):
        from repro.eval import format_table

        text = format_table(
            ["System", "Right", "F1"],
            [["ours", 32, 0.4], ["DEANNA", 21, 0.21]],
            title="Table 8",
        )
        assert "Table 8" in text
        assert "ours" in text
        assert "0.40" in text
        lines = text.splitlines()
        assert len(lines) == 5
