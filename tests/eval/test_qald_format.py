"""Tests for the QALD-3 result-format exporter."""

import json

import pytest

from repro.core import GAnswer
from repro.datasets import build_dbpedia_mini, build_phrase_dataset, qald_questions
from repro.eval import evaluate_system
from repro.eval.qald_format import run_to_qald_json, write_qald_results
from repro.paraphrase import ParaphraseMiner


@pytest.fixture(scope="module")
def run():
    kg = build_dbpedia_mini()
    dictionary = ParaphraseMiner(kg, max_path_length=4, top_k=3).mine(
        build_phrase_dataset()
    )
    return evaluate_system(
        GAnswer(kg, dictionary), qald_questions()[:12], "gAnswer (repro)"
    )


class TestQALDFormat:
    def test_valid_json_with_summary(self, run):
        payload = json.loads(run_to_qald_json(run))
        assert payload["system"] == "gAnswer (repro)"
        assert payload["summary"]["total"] == 12
        assert len(payload["questions"]) == 12

    def test_per_question_fields(self, run):
        payload = json.loads(run_to_qald_json(run))
        record = payload["questions"][0]
        for field in ("id", "question", "answers", "gold", "precision",
                      "recall", "f1", "answered", "time_ms"):
            assert field in record

    def test_right_question_scores_one(self, run):
        payload = json.loads(run_to_qald_json(run))
        by_id = {record["id"]: record for record in payload["questions"]}
        assert by_id[2]["f1"] == 1.0          # Q2 is a Table 11 question
        assert by_id[2]["answers"] == ["res:Lyndon_B._Johnson"]

    def test_boolean_question_fields(self, run):
        payload = json.loads(run_to_qald_json(run))
        by_id = {record["id"]: record for record in payload["questions"]}
        assert by_id[7]["gold_boolean"] is True  # Q7 yes/no
        assert "boolean" in by_id[7]

    def test_failure_class_recorded(self, run):
        payload = json.loads(run_to_qald_json(run))
        classes = {
            record.get("failure_class")
            for record in payload["questions"]
        }
        assert len(classes) > 1  # at least one failure class plus None

    def test_write_to_file(self, run, tmp_path):
        path = write_qald_results(run, tmp_path / "results.json")
        payload = json.loads(path.read_text())
        assert payload["summary"]["total"] == 12

    def test_deterministic(self, run):
        assert run_to_qald_json(run) == run_to_qald_json(run)
