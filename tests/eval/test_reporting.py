"""Tests for table and bar-chart formatting."""

import pytest

from repro.eval.reporting import format_bar_chart, format_table


class TestFormatTable:
    def test_column_alignment(self):
        text = format_table(["name", "n"], [["a", 1], ["longer", 22]])
        data_lines = [line for line in text.splitlines() if "|" in line]
        assert len(data_lines) == 3  # header + 2 rows
        assert len({line.index("|") for line in data_lines}) == 1

    def test_floats_two_decimals(self):
        assert "0.33" in format_table(["x"], [[1 / 3]])

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestBarChart:
    def test_scaling_to_max(self):
        chart = format_bar_chart(["a", "b"], [10.0, 5.0], width=10)
        lines = chart.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_title_and_unit(self):
        chart = format_bar_chart(["q"], [2.0], title="Speedups", unit="x")
        assert chart.startswith("Speedups")
        assert "2x" in chart

    def test_zero_values(self):
        chart = format_bar_chart(["a", "b"], [0.0, 0.0])
        assert "█" not in chart

    def test_negative_clamped(self):
        chart = format_bar_chart(["a", "b"], [-1.0, 4.0], width=8)
        lines = chart.splitlines()
        assert lines[0].count("█") == 0
        assert lines[1].count("█") == 8

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            format_bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        assert format_bar_chart([], []) == ""

    def test_labels_aligned(self):
        chart = format_bar_chart(["short", "a much longer label"], [1.0, 2.0])
        lines = chart.splitlines()
        assert len({line.index("|") for line in lines}) == 1
