"""Tests for bundle save/load: the deployment round-trip."""

import json

import pytest

from repro.bundle import load_bundle, save_bundle
from repro.core import GAnswer
from repro.datasets import build_dbpedia_mini, build_phrase_dataset
from repro.exceptions import ReproError
from repro.paraphrase import ParaphraseMiner
from repro.paraphrase.miner import normalize_phrase


@pytest.fixture(scope="module")
def setup():
    kg = build_dbpedia_mini()
    dictionary = ParaphraseMiner(kg, max_path_length=4, top_k=3).mine(
        build_phrase_dataset()
    )
    return kg, dictionary


class TestBundleRoundTrip:
    def test_files_created(self, setup, tmp_path):
        kg, dictionary = setup
        bundle_dir = save_bundle(tmp_path / "bundle", kg, dictionary)
        assert (bundle_dir / "graph.nt").exists()
        assert (bundle_dir / "dictionary.json").exists()
        assert (bundle_dir / "manifest.json").exists()

    def test_loaded_setup_answers_identically(self, setup, tmp_path):
        kg, dictionary = setup
        save_bundle(tmp_path / "bundle", kg, dictionary)
        loaded_kg, loaded_dictionary = load_bundle(tmp_path / "bundle")

        question = "Who was married to an actor that played in Philadelphia?"
        original = GAnswer(kg, dictionary).answer(question)
        restored = GAnswer(loaded_kg, loaded_dictionary).answer(question)
        assert [str(a) for a in restored.answers] == [
            str(a) for a in original.answers
        ]

    def test_paths_rebound_not_copied(self, setup, tmp_path):
        """The loaded store assigns different term ids; the dictionary's
        paths must still name the same predicates."""
        kg, dictionary = setup
        save_bundle(tmp_path / "bundle", kg, dictionary)
        loaded_kg, loaded_dictionary = load_bundle(tmp_path / "bundle")
        from repro.rdf.graph import step_predicate

        key = normalize_phrase("was married to")
        original_iri = kg.iri_of(step_predicate(dictionary.lookup(key)[0].path[0]))
        loaded_iri = loaded_kg.iri_of(
            step_predicate(loaded_dictionary.lookup(key)[0].path[0])
        )
        assert original_iri == loaded_iri

    def test_multi_hop_paths_survive(self, setup, tmp_path):
        kg, dictionary = setup
        save_bundle(tmp_path / "bundle", kg, dictionary)
        loaded_kg, loaded_dictionary = load_bundle(tmp_path / "bundle")
        key = normalize_phrase("player in")
        lengths = {m.length for m in loaded_dictionary.lookup(key)}
        assert 2 in lengths  # the (team, league) path

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            load_bundle(tmp_path)

    def test_version_mismatch_rejected(self, setup, tmp_path):
        kg, dictionary = setup
        bundle_dir = save_bundle(tmp_path / "bundle", kg, dictionary)
        manifest = json.loads((bundle_dir / "manifest.json").read_text())
        manifest["format_version"] = 99
        (bundle_dir / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ReproError):
            load_bundle(bundle_dir)

    def test_truncated_graph_rejected(self, setup, tmp_path):
        kg, dictionary = setup
        bundle_dir = save_bundle(tmp_path / "bundle", kg, dictionary)
        graph_path = bundle_dir / "graph.nt"
        lines = graph_path.read_text().splitlines()
        graph_path.write_text("\n".join(lines[: len(lines) // 2]) + "\n")
        with pytest.raises(ReproError):
            load_bundle(bundle_dir)

    def test_truncated_dictionary_rejected(self, setup, tmp_path):
        """The manifest's phrase count guards dictionary.json the same way
        the triple count guards graph.nt (it used to go unchecked: a
        truncated dictionary silently loaded with fewer phrases)."""
        kg, dictionary = setup
        bundle_dir = save_bundle(tmp_path / "bundle", kg, dictionary)
        dictionary_path = bundle_dir / "dictionary.json"
        payload = json.loads(dictionary_path.read_text())
        for phrase in sorted(payload)[: len(payload) // 2]:
            del payload[phrase]
        dictionary_path.write_text(json.dumps(payload))
        with pytest.raises(ReproError, match="phrases"):
            load_bundle(bundle_dir)

    def test_corrupt_dictionary_json_rejected(self, setup, tmp_path):
        kg, dictionary = setup
        bundle_dir = save_bundle(tmp_path / "bundle", kg, dictionary)
        dictionary_path = bundle_dir / "dictionary.json"
        dictionary_path.write_text(dictionary_path.read_text()[:-40])
        with pytest.raises(ReproError, match="truncated or corrupt"):
            load_bundle(bundle_dir)

    def test_v1_manifest_still_loads(self, setup, tmp_path):
        """Bundles written before the snapshot era carry format_version 1
        and no snapshot member; they must keep loading via the text path."""
        kg, dictionary = setup
        bundle_dir = save_bundle(tmp_path / "bundle", kg, dictionary)
        manifest_path = bundle_dir / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = 1
        manifest.pop("snapshot", None)
        manifest_path.write_text(json.dumps(manifest))
        loaded_kg, loaded_dictionary = load_bundle(bundle_dir)
        assert len(loaded_kg.store) == len(kg.store)
        assert len(loaded_dictionary) == len(dictionary)


class TestSnapshotBundle:
    def test_snapshot_member_written(self, setup, tmp_path):
        kg, dictionary = setup
        bundle_dir = save_bundle(
            tmp_path / "bundle", kg, dictionary, include_snapshot=True
        )
        assert (bundle_dir / "graph.snap").exists()
        manifest = json.loads((bundle_dir / "manifest.json").read_text())
        assert manifest["snapshot"] == "graph.snap"
        assert manifest["format_version"] == 2

    def test_snapshot_load_preserves_term_ids(self, setup, tmp_path):
        kg, dictionary = setup
        bundle_dir = save_bundle(
            tmp_path / "bundle", kg, dictionary, include_snapshot=True
        )
        loaded_kg, loaded_dictionary = load_bundle(bundle_dir)
        # The snapshot path freezes ids; the text path re-assigns them.
        assert (
            loaded_kg.store.dictionary.terms_in_id_order()
            == kg.store.dictionary.terms_in_id_order()
        )
        assert len(loaded_dictionary) == len(dictionary)

    def test_snapshot_answers_match_text_path(self, setup, tmp_path):
        kg, dictionary = setup
        bundle_dir = save_bundle(
            tmp_path / "bundle", kg, dictionary, include_snapshot=True
        )
        snap_kg, snap_dictionary = load_bundle(bundle_dir)
        text_kg, text_dictionary = load_bundle(bundle_dir, prefer_snapshot=False)
        question = "Who was married to an actor that played in Philadelphia?"
        from_snapshot = GAnswer(snap_kg, snap_dictionary).answer(question)
        from_text = GAnswer(text_kg, text_dictionary).answer(question)
        assert [str(a) for a in from_snapshot.answers] == [
            str(a) for a in from_text.answers
        ]

    def test_missing_snapshot_falls_back_to_text(self, setup, tmp_path):
        kg, dictionary = setup
        bundle_dir = save_bundle(
            tmp_path / "bundle", kg, dictionary, include_snapshot=True
        )
        (bundle_dir / "graph.snap").unlink()
        loaded_kg, _ = load_bundle(bundle_dir)
        assert len(loaded_kg.store) == len(kg.store)

    def test_corrupt_snapshot_rejected(self, setup, tmp_path):
        kg, dictionary = setup
        bundle_dir = save_bundle(
            tmp_path / "bundle", kg, dictionary, include_snapshot=True
        )
        snap_path = bundle_dir / "graph.snap"
        raw = bytearray(snap_path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        snap_path.write_bytes(raw)
        with pytest.raises(ReproError, match="snapshot"):
            load_bundle(bundle_dir)
