"""Tests for bundle save/load: the deployment round-trip."""

import json

import pytest

from repro.bundle import load_bundle, save_bundle
from repro.core import GAnswer
from repro.datasets import build_dbpedia_mini, build_phrase_dataset
from repro.exceptions import ReproError
from repro.paraphrase import ParaphraseMiner
from repro.paraphrase.miner import normalize_phrase


@pytest.fixture(scope="module")
def setup():
    kg = build_dbpedia_mini()
    dictionary = ParaphraseMiner(kg, max_path_length=4, top_k=3).mine(
        build_phrase_dataset()
    )
    return kg, dictionary


class TestBundleRoundTrip:
    def test_files_created(self, setup, tmp_path):
        kg, dictionary = setup
        bundle_dir = save_bundle(tmp_path / "bundle", kg, dictionary)
        assert (bundle_dir / "graph.nt").exists()
        assert (bundle_dir / "dictionary.json").exists()
        assert (bundle_dir / "manifest.json").exists()

    def test_loaded_setup_answers_identically(self, setup, tmp_path):
        kg, dictionary = setup
        save_bundle(tmp_path / "bundle", kg, dictionary)
        loaded_kg, loaded_dictionary = load_bundle(tmp_path / "bundle")

        question = "Who was married to an actor that played in Philadelphia?"
        original = GAnswer(kg, dictionary).answer(question)
        restored = GAnswer(loaded_kg, loaded_dictionary).answer(question)
        assert [str(a) for a in restored.answers] == [
            str(a) for a in original.answers
        ]

    def test_paths_rebound_not_copied(self, setup, tmp_path):
        """The loaded store assigns different term ids; the dictionary's
        paths must still name the same predicates."""
        kg, dictionary = setup
        save_bundle(tmp_path / "bundle", kg, dictionary)
        loaded_kg, loaded_dictionary = load_bundle(tmp_path / "bundle")
        from repro.rdf.graph import step_predicate

        key = normalize_phrase("was married to")
        original_iri = kg.iri_of(step_predicate(dictionary.lookup(key)[0].path[0]))
        loaded_iri = loaded_kg.iri_of(
            step_predicate(loaded_dictionary.lookup(key)[0].path[0])
        )
        assert original_iri == loaded_iri

    def test_multi_hop_paths_survive(self, setup, tmp_path):
        kg, dictionary = setup
        save_bundle(tmp_path / "bundle", kg, dictionary)
        loaded_kg, loaded_dictionary = load_bundle(tmp_path / "bundle")
        key = normalize_phrase("player in")
        lengths = {m.length for m in loaded_dictionary.lookup(key)}
        assert 2 in lengths  # the (team, league) path

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            load_bundle(tmp_path)

    def test_version_mismatch_rejected(self, setup, tmp_path):
        kg, dictionary = setup
        bundle_dir = save_bundle(tmp_path / "bundle", kg, dictionary)
        manifest = json.loads((bundle_dir / "manifest.json").read_text())
        manifest["format_version"] = 99
        (bundle_dir / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ReproError):
            load_bundle(bundle_dir)

    def test_truncated_graph_rejected(self, setup, tmp_path):
        kg, dictionary = setup
        bundle_dir = save_bundle(tmp_path / "bundle", kg, dictionary)
        graph_path = bundle_dir / "graph.nt"
        lines = graph_path.read_text().splitlines()
        graph_path.write_text("\n".join(lines[: len(lines) // 2]) + "\n")
        with pytest.raises(ReproError):
            load_bundle(bundle_dir)
