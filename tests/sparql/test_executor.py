"""Tests for SPARQL evaluation over the triple store."""

import pytest

from repro.exceptions import SPARQLEvaluationError
from repro.rdf import IRI, Literal, Triple, TripleStore
from repro.rdf import vocab
from repro.sparql import Variable, evaluate, parse_query


@pytest.fixture
def store():
    """Small movie/people graph with numeric attributes."""
    store = TripleStore()
    e = lambda name: IRI(f"ex:{name}")
    lit_int = lambda n: Literal(str(n), datatype=vocab.XSD_INTEGER)
    store.add_all(
        [
            Triple(e("banderas"), e("spouse"), e("griffith")),
            Triple(e("banderas"), e("starring"), e("philadelphia_film")),
            Triple(e("hanks"), e("starring"), e("philadelphia_film")),
            Triple(e("hanks"), e("starring"), e("forrest_gump")),
            Triple(e("banderas"), vocab.RDF_TYPE, e("Actor")),
            Triple(e("hanks"), vocab.RDF_TYPE, e("Actor")),
            Triple(e("banderas"), e("age"), lit_int(63)),
            Triple(e("hanks"), e("age"), lit_int(67)),
            Triple(e("griffith"), e("age"), lit_int(66)),
        ]
    )
    return store


def values(rows, name):
    return [row[Variable(name)] for row in rows]


class TestBasicGraphPatterns:
    def test_single_pattern(self, store):
        rows = evaluate(store, parse_query("SELECT ?w WHERE { <ex:banderas> <ex:spouse> ?w }"))
        assert values(rows, "w") == [IRI("ex:griffith")]

    def test_join_two_patterns(self, store):
        # "Who was married to an actor that played in Philadelphia?"
        query = parse_query(
            "SELECT ?who WHERE { ?a <ex:spouse> ?who . ?a <ex:starring> <ex:philadelphia_film> }"
        )
        rows = evaluate(store, query)
        assert values(rows, "who") == [IRI("ex:griffith")]

    def test_join_shares_variable_consistently(self, store):
        # ?x must be the same node in both patterns.
        query = parse_query("SELECT ?x WHERE { ?x <ex:starring> ?f . ?x <ex:spouse> ?s }")
        rows = evaluate(store, query)
        assert values(rows, "x") == [IRI("ex:banderas")]

    def test_variable_predicate(self, store):
        query = parse_query("SELECT ?p WHERE { <ex:banderas> ?p <ex:griffith> }")
        rows = evaluate(store, query)
        assert values(rows, "p") == [IRI("ex:spouse")]

    def test_repeated_variable_in_one_pattern(self, store):
        store.add(Triple(IRI("ex:loop"), IRI("ex:knows"), IRI("ex:loop")))
        query = parse_query("SELECT ?x WHERE { ?x <ex:knows> ?x }")
        rows = evaluate(store, query)
        assert values(rows, "x") == [IRI("ex:loop")]

    def test_no_solutions(self, store):
        rows = evaluate(store, parse_query("SELECT ?x WHERE { ?x <ex:director> ?y }"))
        assert rows == []

    def test_select_star_projects_all(self, store):
        rows = evaluate(store, parse_query("SELECT * WHERE { <ex:banderas> <ex:spouse> ?w }"))
        assert rows == [{Variable("w"): IRI("ex:griffith")}]

    def test_distinct(self, store):
        query = parse_query("SELECT DISTINCT ?f WHERE { ?x <ex:starring> ?f }")
        rows = evaluate(store, query)
        assert sorted(term.value for term in values(rows, "f")) == [
            "ex:forrest_gump",
            "ex:philadelphia_film",
        ]

    def test_without_distinct_keeps_duplicates(self, store):
        query = parse_query("SELECT ?f WHERE { ?x <ex:starring> ?f }")
        rows = evaluate(store, query)
        assert len(rows) == 3


class TestAsk:
    def test_ask_true(self, store):
        assert evaluate(store, parse_query("ASK { <ex:banderas> <ex:spouse> <ex:griffith> }"))

    def test_ask_false(self, store):
        assert not evaluate(store, parse_query("ASK { <ex:hanks> <ex:spouse> <ex:griffith> }"))

    def test_ask_with_join(self, store):
        query = parse_query("ASK { ?x <ex:spouse> ?y . ?x <ex:starring> ?f }")
        assert evaluate(store, query)


class TestFiltersAndModifiers:
    def test_numeric_filter(self, store):
        query = parse_query("SELECT ?x WHERE { ?x <ex:age> ?a . FILTER(?a > 65) }")
        rows = evaluate(store, query)
        names = sorted(term.value for term in values(rows, "x"))
        assert names == ["ex:griffith", "ex:hanks"]

    def test_conjunction_filter(self, store):
        query = parse_query(
            "SELECT ?x WHERE { ?x <ex:age> ?a . FILTER(?a > 65 && ?a < 67) }"
        )
        rows = evaluate(store, query)
        assert values(rows, "x") == [IRI("ex:griffith")]

    def test_not_filter(self, store):
        query = parse_query("SELECT ?x WHERE { ?x <ex:age> ?a . FILTER(!(?a = 66)) }")
        rows = evaluate(store, query)
        assert len(rows) == 2

    def test_filter_on_iri_inequality(self, store):
        query = parse_query(
            "SELECT ?x WHERE { ?x <ex:starring> <ex:philadelphia_film> . FILTER(?x != <ex:hanks>) }"
        )
        rows = evaluate(store, query)
        assert values(rows, "x") == [IRI("ex:banderas")]

    def test_order_by_ascending(self, store):
        query = parse_query("SELECT ?x ?a WHERE { ?x <ex:age> ?a } ORDER BY ?a")
        rows = evaluate(store, query)
        ages = [int(lit.lexical) for lit in values(rows, "a")]
        assert ages == [63, 66, 67]

    def test_superlative_via_order_limit(self, store):
        # The paper's aggregation shape: ORDER BY DESC(?x) OFFSET 0 LIMIT 1.
        query = parse_query(
            "SELECT ?x WHERE { ?x <ex:age> ?a } ORDER BY DESC(?a) OFFSET 0 LIMIT 1"
        )
        rows = evaluate(store, query)
        assert values(rows, "x") == [IRI("ex:hanks")]

    def test_offset_and_limit_window(self, store):
        query = parse_query("SELECT ?x WHERE { ?x <ex:age> ?a } ORDER BY ?a LIMIT 1 OFFSET 1")
        rows = evaluate(store, query)
        assert values(rows, "x") == [IRI("ex:griffith")]

    def test_count(self, store):
        query = parse_query("SELECT COUNT(?f) WHERE { ?x <ex:starring> ?f }")
        assert evaluate(store, query) == 3

    def test_count_distinct(self, store):
        query = parse_query("SELECT DISTINCT COUNT(?f) WHERE { ?x <ex:starring> ?f }")
        assert evaluate(store, query) == 2

    def test_numeric_equality_across_forms(self, store):
        store.add(Triple(IRI("ex:x"), IRI("ex:score"), Literal("1.0")))
        query = parse_query('SELECT ?s WHERE { <ex:x> <ex:score> ?s . FILTER(?s = 1) }')
        assert len(evaluate(store, query)) == 1


class TestEvaluationErrors:
    def test_projection_of_unknown_variable(self, store):
        query = parse_query("SELECT ?nope WHERE { ?x <ex:age> ?a }")
        with pytest.raises(SPARQLEvaluationError):
            evaluate(store, query)

    def test_filter_on_unknown_variable(self, store):
        query = parse_query("SELECT ?x WHERE { ?x <ex:age> ?a . FILTER(?nope > 1) }")
        with pytest.raises(SPARQLEvaluationError):
            evaluate(store, query)

    def test_order_by_unknown_variable(self, store):
        query = parse_query("SELECT ?x WHERE { ?x <ex:age> ?a } ORDER BY ?nope")
        with pytest.raises(SPARQLEvaluationError):
            evaluate(store, query)

    def test_order_comparison_of_mixed_kinds(self, store):
        query = parse_query(
            "SELECT ?x WHERE { ?x <ex:spouse> ?y . FILTER(?y > 3) }"
        )
        with pytest.raises(SPARQLEvaluationError):
            evaluate(store, query)

    def test_count_unknown_variable(self, store):
        query = parse_query("SELECT COUNT(?nope) WHERE { ?x <ex:age> ?a }")
        with pytest.raises(SPARQLEvaluationError):
            evaluate(store, query)
