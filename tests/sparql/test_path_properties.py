"""Property-based tests for SPARQL property-path evaluation.

The closure operators are checked against a brute-force reference
(iterated single steps) on random graphs, and source/target symmetric
evaluation must agree.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf import IRI, KnowledgeGraph, Triple, TripleStore
from repro.sparql.paths import (
    InversePath,
    PredicateStep,
    RepeatPath,
    SequencePath,
    evaluate_path,
)

_triples = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 1), st.integers(0, 5)),
    min_size=1,
    max_size=15,
)


def build(triple_specs):
    store = TripleStore()
    for s, p, o in triple_specs:
        store.add(Triple(IRI(f"pp:n{s}"), IRI(f"pp:p{p}"), IRI(f"pp:n{o}")))
    return store


def direct_pairs(store, predicate):
    pid = store.dictionary.lookup_or_none(IRI(predicate))
    if pid is None:
        return set()
    return {(s, o) for s, _p, o in store.triples_ids(p=pid)}


def closure_pairs(pairs, nodes, include_zero):
    """Brute-force transitive closure of a relation over node ids."""
    reachable = {node: {o for s, o in pairs if s == node} for node in nodes}
    changed = True
    while changed:
        changed = False
        for node in nodes:
            extra = set()
            for mid in reachable[node]:
                extra |= reachable.get(mid, set())
            if not extra <= reachable[node]:
                reachable[node] |= extra
                changed = True
    result = {(s, o) for s, targets in reachable.items() for o in targets}
    if include_zero:
        result |= {(node, node) for node in nodes}
    return result


@settings(max_examples=60, deadline=None)
@given(_triples, st.booleans())
def test_closure_matches_brute_force(triple_specs, zero):
    store = build(triple_specs)
    kg = KnowledgeGraph(store)
    path = RepeatPath(PredicateStep(IRI("pp:p0")), min_count=0 if zero else 1)
    nodes = store.node_ids()
    pairs = direct_pairs(store, "pp:p0")
    expected = closure_pairs(pairs, nodes, include_zero=zero)
    measured = set(evaluate_path(store, path, None, None))
    assert measured == expected


@settings(max_examples=60, deadline=None)
@given(_triples)
def test_inverse_is_swapped(triple_specs):
    store = build(triple_specs)
    forward = set(evaluate_path(store, PredicateStep(IRI("pp:p0")), None, None))
    inverse = set(
        evaluate_path(store, InversePath(PredicateStep(IRI("pp:p0"))), None, None)
    )
    assert inverse == {(o, s) for s, o in forward}


@settings(max_examples=60, deadline=None)
@given(_triples)
def test_bound_evaluation_agrees_with_free(triple_specs):
    """Evaluating with a bound source/target must select exactly the
    matching subset of the all-free evaluation."""
    store = build(triple_specs)
    path = SequencePath((PredicateStep(IRI("pp:p0")), PredicateStep(IRI("pp:p1"))))
    all_pairs = set(evaluate_path(store, path, None, None))
    for node in store.node_ids():
        from_node = set(evaluate_path(store, path, node, None))
        assert from_node == {(s, o) for s, o in all_pairs if s == node}
        to_node = set(evaluate_path(store, path, None, node))
        assert to_node == {(s, o) for s, o in all_pairs if o == node}


@settings(max_examples=40, deadline=None)
@given(_triples)
def test_sequence_equals_manual_join(triple_specs):
    store = build(triple_specs)
    path = SequencePath((PredicateStep(IRI("pp:p0")), PredicateStep(IRI("pp:p1"))))
    first = direct_pairs(store, "pp:p0")
    second = direct_pairs(store, "pp:p1")
    expected = {(s, o2) for s, o1 in first for o2b, o2 in second if o1 == o2b}
    assert set(evaluate_path(store, path, None, None)) == expected
