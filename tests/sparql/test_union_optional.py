"""Tests for the UNION and OPTIONAL extensions to the SPARQL subset."""

import pytest

from repro.exceptions import SPARQLSyntaxError
from repro.rdf import IRI, Literal, Triple, TripleStore
from repro.sparql import Variable, evaluate, parse_query


@pytest.fixture
def store():
    store = TripleStore()
    triples = [
        ("banderas", "starring", "philadelphia"),
        ("demme", "director", "philadelphia"),
        ("hanks", "starring", "philadelphia"),
        ("banderas", "spouse", "griffith"),
    ]
    for s, p, o in triples:
        store.add(Triple(IRI(f"u:{s}"), IRI(f"u:{p}"), IRI(f"u:{o}")))
    store.add(Triple(IRI("u:banderas"), IRI("u:height"), Literal("1.74")))
    return store


def values(rows, name):
    return sorted(str(row[Variable(name)]) for row in rows if Variable(name) in row)


class TestUnionParsing:
    def test_two_arms(self):
        query = parse_query(
            "SELECT ?x WHERE { { ?x <u:starring> ?f } UNION { ?x <u:director> ?f } }"
        )
        assert len(query.unions) == 1
        assert len(query.unions[0]) == 2

    def test_three_arms(self):
        query = parse_query(
            "SELECT ?x WHERE { { ?x <u:a> ?f } UNION { ?x <u:b> ?f } UNION { ?x <u:c> ?f } }"
        )
        assert len(query.unions[0]) == 3

    def test_bare_nested_group_rejected(self):
        with pytest.raises(SPARQLSyntaxError):
            parse_query("SELECT ?x WHERE { { ?x <u:a> ?y } }")

    def test_nested_union_rejected(self):
        with pytest.raises(SPARQLSyntaxError):
            parse_query(
                "SELECT ?x WHERE { { { ?x <u:a> ?y } UNION { ?x <u:b> ?y } } UNION { ?x <u:c> ?y } }"
            )


class TestUnionEvaluation:
    def test_union_of_predicates(self, store):
        # Everyone involved with the film, as actor or director.
        query = parse_query(
            "SELECT ?p WHERE {"
            " { ?p <u:starring> <u:philadelphia> } UNION { ?p <u:director> <u:philadelphia> } }"
        )
        assert values(evaluate(store, query), "p") == [
            "u:banderas", "u:demme", "u:hanks",
        ]

    def test_union_joined_with_base_pattern(self, store):
        query = parse_query(
            "SELECT ?w WHERE { ?p <u:spouse> ?w ."
            " { ?p <u:starring> <u:philadelphia> } UNION { ?p <u:director> <u:philadelphia> } }"
        )
        assert values(evaluate(store, query), "w") == ["u:griffith"]

    def test_empty_arm_contributes_nothing(self, store):
        query = parse_query(
            "SELECT ?p WHERE {"
            " { ?p <u:starring> <u:philadelphia> } UNION { ?p <u:nothing> <u:philadelphia> } }"
        )
        assert values(evaluate(store, query), "p") == ["u:banderas", "u:hanks"]

    def test_union_in_ask(self, store):
        query = parse_query(
            "ASK { { <u:demme> <u:starring> <u:philadelphia> }"
            " UNION { <u:demme> <u:director> <u:philadelphia> } }"
        )
        assert evaluate(store, query) is True

    def test_union_with_arm_filter(self, store):
        query = parse_query(
            "SELECT ?p ?h WHERE { ?p <u:starring> <u:philadelphia> ."
            " { ?p <u:height> ?h . FILTER(?h > 1) } UNION { ?p <u:spouse> ?h } }"
        )
        rows = evaluate(store, query)
        assert values(rows, "p") == ["u:banderas", "u:banderas"]


class TestOptionalEvaluation:
    def test_optional_extends_when_present(self, store):
        query = parse_query(
            "SELECT ?p ?s WHERE { ?p <u:starring> <u:philadelphia> ."
            " OPTIONAL { ?p <u:spouse> ?s } }"
        )
        rows = evaluate(store, query)
        assert len(rows) == 2
        bound = [row for row in rows if Variable("s") in row]
        assert values(bound, "s") == ["u:griffith"]

    def test_optional_keeps_row_when_absent(self, store):
        query = parse_query(
            "SELECT ?p ?s WHERE { ?p <u:starring> <u:philadelphia> ."
            " OPTIONAL { ?p <u:spouse> ?s } }"
        )
        rows = evaluate(store, query)
        unbound = [row for row in rows if Variable("s") not in row]
        assert values(unbound, "p") == ["u:hanks"]

    def test_count_skips_unbound(self, store):
        query = parse_query(
            "SELECT COUNT(?s) WHERE { ?p <u:starring> <u:philadelphia> ."
            " OPTIONAL { ?p <u:spouse> ?s } }"
        )
        assert evaluate(store, query) == 1

    def test_order_by_with_unbound_sorts_first(self, store):
        query = parse_query(
            "SELECT ?p ?s WHERE { ?p <u:starring> <u:philadelphia> ."
            " OPTIONAL { ?p <u:spouse> ?s } } ORDER BY ?s"
        )
        rows = evaluate(store, query)
        assert Variable("s") not in rows[0]

    def test_two_optionals(self, store):
        query = parse_query(
            "SELECT ?p ?s ?h WHERE { ?p <u:starring> <u:philadelphia> ."
            " OPTIONAL { ?p <u:spouse> ?s } OPTIONAL { ?p <u:height> ?h } }"
        )
        rows = evaluate(store, query)
        banderas_rows = [
            row for row in rows if str(row[Variable("p")]) == "u:banderas"
        ]
        assert Variable("h") in banderas_rows[0]


class TestGraphExecutorExclusion:
    def test_union_not_compilable(self):
        from repro.sparql.graph_executor import is_compilable

        query = parse_query(
            "SELECT ?x WHERE { { ?x <u:a> ?y } UNION { ?x <u:b> ?y } }"
        )
        assert is_compilable(query) is not None
