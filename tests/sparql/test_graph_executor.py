"""Cross-validation: the matching-based SPARQL engine agrees with the
algebraic one (the gStore equivalence of Section 7)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SPARQLEvaluationError
from repro.rdf import IRI, KnowledgeGraph, Triple, TripleStore
from repro.sparql import Variable, evaluate, parse_query
from repro.sparql.graph_executor import (
    compile_to_space,
    evaluate_by_matching,
    is_compilable,
)


@pytest.fixture(scope="module")
def kg():
    store = TripleStore()
    triples = [
        ("banderas", "spouse", "griffith"),
        ("banderas", "starring", "philadelphia_film"),
        ("hanks", "starring", "philadelphia_film"),
        ("hanks", "starring", "forrest_gump"),
        ("demme", "director", "philadelphia_film"),
    ]
    for s, p, o in triples:
        store.add(Triple(IRI(f"x:{s}"), IRI(f"x:{p}"), IRI(f"x:{o}")))
    return KnowledgeGraph(store)


def row_set(rows):
    return {
        tuple(sorted((var.name, repr(term)) for var, term in row.items()))
        for row in rows
    }


class TestCompilability:
    def test_plain_bgp_compilable(self):
        query = parse_query("SELECT ?x WHERE { ?x <x:spouse> ?y }")
        assert is_compilable(query) is None

    def test_filter_not_compilable(self):
        query = parse_query("SELECT ?x WHERE { ?x <x:age> ?a . FILTER(?a > 1) }")
        assert is_compilable(query) is not None

    def test_variable_predicate_not_compilable(self):
        query = parse_query("SELECT ?p WHERE { <x:banderas> ?p ?y }")
        assert is_compilable(query) is not None

    def test_ask_not_compilable(self):
        query = parse_query("ASK { <x:a> <x:b> <x:c> }")
        assert is_compilable(query) is not None

    def test_compile_raises_on_uncompilable(self, kg):
        query = parse_query("SELECT ?p WHERE { <x:banderas> ?p ?y }")
        with pytest.raises(SPARQLEvaluationError):
            compile_to_space(kg, query)


class TestEquivalence:
    @pytest.mark.parametrize(
        "query_text",
        [
            "SELECT ?w WHERE { <x:banderas> <x:spouse> ?w }",
            "SELECT ?a WHERE { ?a <x:starring> <x:philadelphia_film> }",
            "SELECT ?w WHERE { ?a <x:spouse> ?w . ?a <x:starring> <x:philadelphia_film> }",
            "SELECT DISTINCT ?f WHERE { ?a <x:starring> ?f }",
            "SELECT ?a ?f WHERE { ?a <x:starring> ?f . ?d <x:director> ?f }",
            "SELECT ?x WHERE { ?x <x:nonexistent> ?y }",
        ],
    )
    def test_engines_agree(self, kg, query_text):
        query = parse_query(query_text)
        algebraic = evaluate(kg.store, query)
        matching = evaluate_by_matching(kg, query)
        # Matching is injective; compare on the algebraic rows whose
        # bindings are pairwise distinct (all of them, in these queries).
        distinct_rows = [
            row for row in algebraic
            if len(set(map(repr, row.values()))) == len(row)
        ]
        assert row_set(matching) == row_set(distinct_rows)

    def test_unknown_bound_term_gives_empty(self, kg):
        query = parse_query("SELECT ?x WHERE { <x:nobody> <x:spouse> ?x }")
        assert evaluate_by_matching(kg, query) == []

    def test_limit_offset(self, kg):
        query = parse_query(
            "SELECT DISTINCT ?f WHERE { ?a <x:starring> ?f } LIMIT 1"
        )
        assert len(evaluate_by_matching(kg, query)) == 1


_triples = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 2), st.integers(0, 5)),
    min_size=2,
    max_size=20,
)


@settings(max_examples=50, deadline=None)
@given(_triples, st.integers(0, 2), st.integers(0, 2))
def test_random_graphs_engines_agree(triple_specs, p1, p2):
    """On random graphs, a random 2-pattern chain query evaluates the same
    under both engines (restricted to distinct-binding rows)."""
    store = TripleStore()
    for s, p, o in triple_specs:
        if s != o:
            store.add(Triple(IRI(f"r:n{s}"), IRI(f"r:p{p}"), IRI(f"r:n{o}")))
    store.add(Triple(IRI("r:n0"), IRI("r:p0"), IRI("r:n1")))
    kg = KnowledgeGraph(store)
    query = parse_query(
        f"SELECT ?x ?y ?z WHERE {{ ?x <r:p{p1}> ?y . ?y <r:p{p2}> ?z }}"
    )
    algebraic = evaluate(store, query)
    matching = evaluate_by_matching(kg, query)
    distinct_rows = [
        row for row in algebraic
        if len(set(map(repr, row.values()))) == len(row)
    ]
    assert row_set(matching) == row_set(distinct_rows)
