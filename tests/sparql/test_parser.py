"""Tests for the SPARQL parser."""

import pytest

from repro.exceptions import SPARQLSyntaxError
from repro.rdf import IRI, Literal
from repro.sparql import (
    BooleanExpr,
    Comparison,
    NotExpr,
    Query,
    QueryForm,
    TriplePattern,
    Variable,
    parse_query,
)
from repro.sparql.ast import Comparator


class TestSelectParsing:
    def test_minimal_select(self):
        query = parse_query("SELECT ?x WHERE { ?x <ex:p> <ex:o> . }")
        assert query.form is QueryForm.SELECT
        assert query.projection == [Variable("x")]
        assert query.patterns == [
            TriplePattern(Variable("x"), IRI("ex:p"), IRI("ex:o"))
        ]

    def test_select_star(self):
        query = parse_query("SELECT * WHERE { ?x <ex:p> ?y . }")
        assert query.projection is None

    def test_select_multiple_variables(self):
        query = parse_query("SELECT ?x ?y WHERE { ?x <ex:p> ?y . }")
        assert query.projection == [Variable("x"), Variable("y")]

    def test_distinct(self):
        query = parse_query("SELECT DISTINCT ?x WHERE { ?x <ex:p> ?y . }")
        assert query.distinct

    def test_count(self):
        query = parse_query("SELECT COUNT(?x) WHERE { ?x <ex:p> ?y . }")
        assert query.count_variable == Variable("x")

    def test_where_keyword_optional(self):
        query = parse_query("SELECT ?x { ?x <ex:p> <ex:o> }")
        assert len(query.patterns) == 1

    def test_multiple_patterns(self):
        query = parse_query(
            "SELECT ?x WHERE { ?x <ex:p> ?y . ?y <ex:q> <ex:o> . }"
        )
        assert len(query.patterns) == 2

    def test_trailing_dot_optional(self):
        query = parse_query("SELECT ?x WHERE { ?x <ex:p> ?y }")
        assert len(query.patterns) == 1

    def test_keywords_case_insensitive(self):
        query = parse_query("select distinct ?x where { ?x <ex:p> ?y } order by ?x limit 3")
        assert query.distinct
        assert query.limit == 3

    def test_literal_objects(self):
        query = parse_query('SELECT ?x WHERE { ?x <ex:name> "Berlin"@de . }')
        assert query.patterns[0].object == Literal("Berlin", language="de")

    def test_numeric_object_integer(self):
        query = parse_query("SELECT ?x WHERE { ?x <ex:age> 42 . }")
        assert query.patterns[0].object.lexical == "42"

    def test_numeric_object_decimal(self):
        query = parse_query("SELECT ?x WHERE { ?x <ex:height> 1.98 . }")
        assert query.patterns[0].object.lexical == "1.98"


class TestAskParsing:
    def test_ask(self):
        query = parse_query("ASK WHERE { <ex:a> <ex:p> <ex:b> . }")
        assert query.form is QueryForm.ASK

    def test_ask_without_where(self):
        query = parse_query("ASK { <ex:a> <ex:p> <ex:b> }")
        assert query.form is QueryForm.ASK


class TestModifiers:
    def test_order_by_plain(self):
        query = parse_query("SELECT ?x WHERE { ?x <ex:p> ?y } ORDER BY ?y")
        assert query.order_by[0].variable == Variable("y")
        assert not query.order_by[0].descending

    def test_order_by_desc(self):
        query = parse_query("SELECT ?x WHERE { ?x <ex:p> ?y } ORDER BY DESC(?y)")
        assert query.order_by[0].descending

    def test_order_by_multiple(self):
        query = parse_query("SELECT ?x WHERE { ?x <ex:p> ?y } ORDER BY DESC(?y) ?x")
        assert len(query.order_by) == 2

    def test_limit_offset(self):
        query = parse_query("SELECT ?x WHERE { ?x <ex:p> ?y } LIMIT 5 OFFSET 2")
        assert query.limit == 5
        assert query.offset == 2

    def test_offset_before_limit(self):
        query = parse_query("SELECT ?x WHERE { ?x <ex:p> ?y } OFFSET 1 LIMIT 1")
        assert query.limit == 1
        assert query.offset == 1

    def test_aggregation_template_from_paper(self):
        # "ORDER BY DESC(?x) OFFSET 0 LIMIT 1" — Section 6.3 failure analysis.
        query = parse_query(
            "SELECT ?p WHERE { ?p <ex:age> ?x } ORDER BY DESC(?x) OFFSET 0 LIMIT 1"
        )
        assert query.order_by[0].descending
        assert query.limit == 1


class TestFilters:
    def test_simple_comparison(self):
        query = parse_query("SELECT ?x WHERE { ?x <ex:age> ?a . FILTER(?a > 30) }")
        comparison = query.filters[0]
        assert isinstance(comparison, Comparison)
        assert comparison.op is Comparator.GT

    def test_conjunction(self):
        query = parse_query(
            "SELECT ?x WHERE { ?x <ex:age> ?a . FILTER(?a > 30 && ?a < 50) }"
        )
        assert isinstance(query.filters[0], BooleanExpr)
        assert query.filters[0].op == "&&"

    def test_disjunction_and_not(self):
        query = parse_query(
            "SELECT ?x WHERE { ?x <ex:age> ?a . FILTER(!(?a = 1) || ?a >= 10) }"
        )
        expr = query.filters[0]
        assert isinstance(expr, BooleanExpr)
        assert expr.op == "||"
        assert isinstance(expr.left, NotExpr)

    def test_not_equal(self):
        query = parse_query("SELECT ?x WHERE { ?x <ex:p> ?y . FILTER(?y != <ex:a>) }")
        assert query.filters[0].op is Comparator.NE


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "FROB ?x WHERE { }",
            "SELECT WHERE { ?x <ex:p> ?y }",
            "SELECT ?x WHERE { ?x <ex:p> }",
            "SELECT ?x WHERE { ?x <ex:p> ?y",
            "SELECT ?x WHERE { ?x <ex:p> ?y } LIMIT ?x",
            "SELECT ?x WHERE { ?x <ex:p> ?y } LIMIT -1",
            "SELECT ?x WHERE { ?x <ex:p> ?y } ORDER BY",
            "SELECT ?x WHERE { ?x <ex:p> ?y } garbage",
            "SELECT ?x WHERE { ?x <> ?y }",
            "SELECT ?x WHERE { FILTER(?y ~ 3) ?x <ex:p> ?y }",
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(SPARQLSyntaxError):
            parse_query(bad)

    def test_returns_query_object(self):
        assert isinstance(parse_query("ASK { <ex:a> <ex:b> <ex:c> }"), Query)
