"""Tests for SPARQL 1.1 property paths (parsing and evaluation)."""

import pytest

from repro.exceptions import SPARQLSyntaxError
from repro.rdf import IRI, Triple, TripleStore
from repro.sparql import Variable, evaluate, parse_query
from repro.sparql.paths import (
    AlternativePath,
    InversePath,
    PredicateStep,
    RepeatPath,
    SequencePath,
    path_to_string,
)


@pytest.fixture
def store():
    """A family tree plus a cycle for closure semantics."""
    store = TripleStore()
    triples = [
        ("alice", "hasChild", "bob"),
        ("bob", "hasChild", "carol"),
        ("carol", "hasChild", "dave"),
        ("alice", "spouse", "albert"),
        ("bob", "knows", "carol"),
        ("carol", "knows", "bob"),  # a knows-cycle
    ]
    for s, p, o in triples:
        store.add(Triple(IRI(f"f:{s}"), IRI(f"f:{p}"), IRI(f"f:{o}")))
    return store


def names(rows, variable="x"):
    return sorted(str(row[Variable(variable)]) for row in rows)


class TestParsing:
    def test_plain_predicate_stays_iri(self):
        query = parse_query("SELECT ?x WHERE { ?x <f:hasChild> ?y }")
        assert isinstance(query.patterns[0].predicate, IRI)

    def test_sequence(self):
        query = parse_query("SELECT ?x WHERE { ?x <f:a>/<f:b> ?y }")
        predicate = query.patterns[0].predicate
        assert isinstance(predicate, SequencePath)
        assert len(predicate.steps) == 2

    def test_alternative(self):
        query = parse_query("SELECT ?x WHERE { ?x <f:a>|<f:b> ?y }")
        assert isinstance(query.patterns[0].predicate, AlternativePath)

    def test_inverse(self):
        query = parse_query("SELECT ?x WHERE { ?x ^<f:a> ?y }")
        assert isinstance(query.patterns[0].predicate, InversePath)

    def test_closure_operators(self):
        plus = parse_query("SELECT ?x WHERE { ?x <f:a>+ ?y }").patterns[0].predicate
        star = parse_query("SELECT ?x WHERE { ?x <f:a>* ?y }").patterns[0].predicate
        optional = parse_query("SELECT ?x WHERE { ?x <f:a>? ?y }").patterns[0].predicate
        assert isinstance(plus, RepeatPath) and plus.min_count == 1
        assert isinstance(star, RepeatPath) and star.min_count == 0
        assert isinstance(optional, RepeatPath) and optional.at_most_one

    def test_grouping(self):
        query = parse_query("SELECT ?x WHERE { ?x (<f:a>/<f:b>)+ ?y }")
        predicate = query.patterns[0].predicate
        assert isinstance(predicate, RepeatPath)
        assert isinstance(predicate.inner, SequencePath)

    def test_empty_iri_in_path_rejected(self):
        with pytest.raises(SPARQLSyntaxError):
            parse_query("SELECT ?x WHERE { ?x <f:a>/<> ?y }")

    def test_path_to_string_roundtrippable(self):
        query = parse_query("SELECT ?x WHERE { ?x (<f:a>/^<f:b>)|<f:c>+ ?y }")
        rendered = path_to_string(query.patterns[0].predicate)
        assert "f:a" in rendered and "^" in rendered and "+" in rendered


class TestEvaluation:
    def test_sequence_grandchild(self, store):
        rows = evaluate(store, parse_query(
            "SELECT ?x WHERE { <f:alice> <f:hasChild>/<f:hasChild> ?x }"
        ))
        assert names(rows) == ["f:carol"]

    def test_inverse(self, store):
        rows = evaluate(store, parse_query(
            "SELECT ?x WHERE { <f:bob> ^<f:hasChild> ?x }"
        ))
        assert names(rows) == ["f:alice"]

    def test_alternative(self, store):
        rows = evaluate(store, parse_query(
            "SELECT ?x WHERE { <f:alice> <f:hasChild>|<f:spouse> ?x }"
        ))
        assert names(rows) == ["f:albert", "f:bob"]

    def test_plus_closure(self, store):
        rows = evaluate(store, parse_query(
            "SELECT ?x WHERE { <f:alice> <f:hasChild>+ ?x }"
        ))
        assert names(rows) == ["f:bob", "f:carol", "f:dave"]

    def test_star_includes_self(self, store):
        rows = evaluate(store, parse_query(
            "SELECT ?x WHERE { <f:alice> <f:hasChild>* ?x }"
        ))
        assert names(rows) == ["f:alice", "f:bob", "f:carol", "f:dave"]

    def test_optional_hop(self, store):
        rows = evaluate(store, parse_query(
            "SELECT ?x WHERE { <f:alice> <f:hasChild>? ?x }"
        ))
        assert names(rows) == ["f:alice", "f:bob"]

    def test_closure_terminates_on_cycle(self, store):
        rows = evaluate(store, parse_query(
            "SELECT ?x WHERE { <f:bob> <f:knows>+ ?x }"
        ))
        assert names(rows) == ["f:bob", "f:carol"]

    def test_bound_target(self, store):
        rows = evaluate(store, parse_query(
            "SELECT ?x WHERE { ?x <f:hasChild>+ <f:dave> }"
        ))
        assert names(rows) == ["f:alice", "f:bob", "f:carol"]

    def test_both_bound_ask_style(self, store):
        rows = evaluate(store, parse_query(
            "SELECT ?y WHERE { <f:alice> <f:hasChild>+ <f:dave> . <f:alice> <f:spouse> ?y }"
        ))
        assert names(rows, "y") == ["f:albert"]

    def test_uncle_style_path(self, store):
        # ^hasChild/hasChild — siblings-of (the paper's uncle building block).
        rows = evaluate(store, parse_query(
            "SELECT ?x WHERE { <f:bob> ^<f:hasChild>/<f:hasChild> ?x }"
        ))
        assert names(rows) == ["f:bob"]

    def test_join_with_plain_pattern(self, store):
        rows = evaluate(store, parse_query(
            "SELECT ?d WHERE { ?a <f:spouse> ?s . ?a <f:hasChild>+ ?d }"
        ))
        assert names(rows, "d") == ["f:bob", "f:carol", "f:dave"]

    def test_unknown_predicate_empty(self, store):
        rows = evaluate(store, parse_query(
            "SELECT ?x WHERE { <f:alice> <f:nothing>+ ?x }"
        ))
        assert rows == []

    def test_repeated_variable_consistency(self, store):
        rows = evaluate(store, parse_query(
            "SELECT ?x WHERE { ?x <f:knows>/<f:knows> ?x }"
        ))
        assert names(rows) == ["f:bob", "f:carol"]
