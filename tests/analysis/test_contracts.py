"""Runtime behavior of the contract decorators (the static checks' anchors)."""

import pytest

from repro.contracts import (
    FORK_SHARED_ATTR,
    GUARDED_FIELDS_ATTR,
    SINGLE_THREADED_ATTR,
    fork_shared,
    guarded_by,
    single_threaded,
)


class TestGuardedBy:
    def test_records_field_to_lock_mapping(self):
        @guarded_by("_lock", "_a", "_b")
        class Guarded:
            pass

        assert getattr(Guarded, GUARDED_FIELDS_ATTR) == {"_a": "_lock", "_b": "_lock"}

    def test_stacking_merges_across_locks(self):
        @guarded_by("_other", "_c")
        @guarded_by("_lock", "_a")
        class Guarded:
            pass

        assert getattr(Guarded, GUARDED_FIELDS_ATTR) == {
            "_a": "_lock",
            "_c": "_other",
        }

    def test_subclass_does_not_mutate_parent(self):
        @guarded_by("_lock", "_a")
        class Parent:
            pass

        @guarded_by("_lock", "_b")
        class Child(Parent):
            pass

        assert getattr(Parent, GUARDED_FIELDS_ATTR) == {"_a": "_lock"}
        assert getattr(Child, GUARDED_FIELDS_ATTR) == {"_a": "_lock", "_b": "_lock"}

    def test_requires_at_least_one_field(self):
        with pytest.raises(ValueError):
            guarded_by("_lock")

    def test_compatible_with_slots(self):
        @guarded_by("_lock", "_a")
        class Slotted:
            __slots__ = ("_lock", "_a")

        assert getattr(Slotted, GUARDED_FIELDS_ATTR) == {"_a": "_lock"}


class TestForkShared:
    def test_records_field_set(self):
        @fork_shared("kg", "dictionary")
        class Engine:
            pass

        assert getattr(Engine, FORK_SHARED_ATTR) == frozenset({"kg", "dictionary"})

    def test_stacking_unions(self):
        @fork_shared("b")
        @fork_shared("a")
        class Engine:
            pass

        assert getattr(Engine, FORK_SHARED_ATTR) == frozenset({"a", "b"})

    def test_requires_at_least_one_field(self):
        with pytest.raises(ValueError):
            fork_shared()


class TestSingleThreaded:
    def test_marks_without_wrapping(self):
        class Engine:
            @single_threaded
            def reset_after_fork(self):
                return "reset"

        assert getattr(Engine.reset_after_fork, SINGLE_THREADED_ATTR) is True
        assert Engine().reset_after_fork() == "reset"


class TestRealClassesCarryContracts:
    def test_ttl_cache_and_metrics_declare_their_locks(self):
        from repro.obs.metrics import Metrics
        from repro.serve.cache import TTLCache

        assert getattr(TTLCache, GUARDED_FIELDS_ATTR)["_entries"] == "_lock"
        assert getattr(Metrics, GUARDED_FIELDS_ATTR)["counters"] == "_lock"

    def test_qa_engine_declares_shared_warm_state(self):
        from repro.serve.engine import QAEngine

        shared = getattr(QAEngine, FORK_SHARED_ATTR)
        assert {"kg", "dictionary", "config"} <= shared
        assert getattr(QAEngine.reset_after_fork, SINGLE_THREADED_ATTR) is True
