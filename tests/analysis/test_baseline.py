"""Baseline round-trip, multiset diff semantics, and malformed inputs."""

import json

import pytest

from repro.analysis.baseline import (
    BASELINE_VERSION,
    diff_against_baseline,
    load_baseline,
    save_baseline,
)
from repro.analysis.rulebase import Finding
from repro.exceptions import LintError


def make_finding(rule="layering", relpath="repro/rdf/store.py", line=3,
                 message="boundary crossed"):
    return Finding(rule=rule, relpath=relpath, line=line, col=0, message=message)


class TestRoundTrip:
    def test_save_then_load_preserves_the_multiset(self, tmp_path):
        path = tmp_path / "baseline.json"
        findings = [make_finding(), make_finding(), make_finding(rule="fork-safety")]
        save_baseline(path, findings)
        loaded = load_baseline(path)
        assert loaded[("layering", "repro/rdf/store.py", "boundary crossed")] == 2
        assert loaded[("fork-safety", "repro/rdf/store.py", "boundary crossed")] == 1

    def test_keys_ignore_line_numbers(self, tmp_path):
        # A baselined finding that drifts to another line stays baselined.
        path = tmp_path / "baseline.json"
        save_baseline(path, [make_finding(line=3)])
        diff = diff_against_baseline([make_finding(line=99)], load_baseline(path))
        assert diff.new == ()
        assert len(diff.known) == 1
        assert diff.stale == ()

    def test_empty_baseline_marks_everything_new(self, tmp_path):
        path = tmp_path / "baseline.json"
        save_baseline(path, [])
        diff = diff_against_baseline([make_finding()], load_baseline(path))
        assert len(diff.new) == 1
        assert diff.known == ()


class TestDiffSemantics:
    def test_multiset_counts_matter(self, tmp_path):
        # Two identical findings against one baseline entry: one known,
        # one new — a duplicate regression must not hide behind the first.
        path = tmp_path / "baseline.json"
        save_baseline(path, [make_finding()])
        diff = diff_against_baseline(
            [make_finding(), make_finding()], load_baseline(path)
        )
        assert len(diff.known) == 1
        assert len(diff.new) == 1

    def test_unmatched_entries_surface_as_stale(self, tmp_path):
        path = tmp_path / "baseline.json"
        save_baseline(path, [make_finding(message="since fixed")])
        diff = diff_against_baseline([], load_baseline(path))
        assert diff.stale == (
            ("layering", "repro/rdf/store.py", "since fixed"),
        )


class TestMalformedInputs:
    def test_missing_file(self, tmp_path):
        with pytest.raises(LintError, match="cannot read"):
            load_baseline(tmp_path / "absent.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json")
        with pytest.raises(LintError, match="not valid JSON"):
            load_baseline(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": BASELINE_VERSION + 1, "findings": []}))
        with pytest.raises(LintError, match="unsupported format"):
            load_baseline(path)

    def test_malformed_entry(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(
            {"version": BASELINE_VERSION, "findings": [{"rule": "layering"}]}
        ))
        with pytest.raises(LintError, match="malformed entry"):
            load_baseline(path)
