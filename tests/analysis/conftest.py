"""Harness for rule fixtures: lint an inline source string as one module."""

import textwrap

import pytest

from repro.analysis import LintConfig
from repro.analysis.rules import ALL_RULES, RULES_BY_NAME
from repro.analysis.walker import load_module


@pytest.fixture
def lint_source(tmp_path):
    """Run rules over a source snippet; returns the surviving findings.

    ``module`` controls the dotted identity the layering and
    monotonic-time rules key on (default: a serve-layer module).
    Pragma suppressions are applied, mirroring ``run_lint``.
    """

    def run(source, *, module="repro.serve.fixture", rule=None, config=None):
        path = tmp_path / (module.rsplit(".", 1)[-1] + ".py")
        path.write_text(textwrap.dedent(source))
        relpath = module.replace(".", "/") + ".py"
        info = load_module(path, relpath, module)
        config = config if config is not None else LintConfig()
        rules = (RULES_BY_NAME[rule],) if rule else ALL_RULES
        findings = []
        for r in rules:
            for finding in r.check(info, config):
                if not info.suppressed(r.name, finding.line):
                    findings.append(finding)
        return findings

    return run
