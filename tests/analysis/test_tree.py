"""Real-tree smoke: the shipped package lints clean against the committed
baseline, and the CLI surface behaves."""

import json
from pathlib import Path

import pytest

import repro
from repro.analysis import LintConfig, run_lint
from repro.cli import main
from repro.exceptions import LintError

PACKAGE_ROOT = Path(repro.__file__).resolve().parent
REPO_ROOT = PACKAGE_ROOT.parent.parent
COMMITTED_BASELINE = REPO_ROOT / "lint-baseline.json"


class TestRealTree:
    def test_package_is_clean_with_empty_baseline(self):
        """The committed policy: zero findings, zero baseline entries.

        serve/ and obs/ violations were *fixed*, not grandfathered, so a
        fresh scan must produce no findings at all — and the committed
        baseline must be exactly empty (no stale residue either).
        """
        report = run_lint([PACKAGE_ROOT], baseline_path=COMMITTED_BASELINE)
        assert report.new_findings == ()
        assert report.known_findings == ()
        assert report.stale_baseline == ()
        assert report.ok

    def test_committed_baseline_is_empty(self):
        payload = json.loads(COMMITTED_BASELINE.read_text())
        assert payload["findings"] == []

    def test_every_rule_runs_over_the_tree(self):
        report = run_lint([PACKAGE_ROOT])
        assert set(report.rules_run) == {
            "lock-discipline",
            "fork-safety",
            "frozen-store",
            "monotonic-time",
            "layering",
            "exception-discipline",
        }
        assert report.files_scanned > 50

    def test_the_one_sanctioned_pragma_is_counted(self):
        # KnowledgeGraph.kernel's double-checked read is the single
        # deliberate suppression in the tree; new pragmas should be rare
        # and reviewed, so the count is pinned.
        report = run_lint([PACKAGE_ROOT])
        assert report.suppressed == 1

    def test_unknown_rule_raises(self):
        with pytest.raises(LintError, match="unknown rule"):
            run_lint([PACKAGE_ROOT], LintConfig(rules=("no-such-rule",)))

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(LintError, match="does not exist"):
            run_lint([tmp_path / "absent"])


class TestCli:
    def test_lint_exits_zero_on_clean_tree(self, capsys):
        assert main(["lint", str(PACKAGE_ROOT)]) == 0
        out = capsys.readouterr().out
        assert "0 new finding(s)" in out

    def test_lint_json_reports_shape(self, capsys):
        assert main(["lint", "--json", str(PACKAGE_ROOT)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["findings"] == []
        assert payload["files_scanned"] > 50
        assert set(payload["counts_by_rule"]) <= set(payload["rules"])
        assert payload["suppressed"] == 1

    def test_lint_fails_on_seeded_violation(self, tmp_path, capsys):
        # The CI gate in one test: a tree with a fresh violation exits 1.
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import time\n\n\ndef deadline(budget):\n"
            "    return time.time() + budget\n"
        )
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "[monotonic-time]" in out

    def test_lint_baseline_grandfathers_old_findings(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import time\n\n\ndef deadline(budget):\n"
            "    return time.time() + budget\n"
        )
        report = run_lint([bad])
        from repro.analysis.baseline import save_baseline

        baseline = tmp_path / "baseline.json"
        save_baseline(baseline, list(report.all_findings))
        assert main(["lint", "--baseline", str(baseline), str(bad)]) == 0
        assert "baselined" in capsys.readouterr().out

    def test_lint_rule_filter(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import time\n\n\ndef deadline(budget):\n"
            "    return time.time() + budget\n"
        )
        assert main(["lint", "--rule", "layering", str(bad)]) == 0
        assert main(["lint", "--rule", "monotonic-time", str(bad)]) == 1
        capsys.readouterr()

    def test_lint_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("lock-discipline", "fork-safety", "frozen-store",
                     "monotonic-time", "layering", "exception-discipline"):
            assert rule in out

    def test_lint_bad_rule_exits_two(self, capsys):
        assert main(["lint", "--rule", "no-such-rule", str(PACKAGE_ROOT)]) == 2
        capsys.readouterr()
