"""Firing / non-firing fixture pairs for every lint rule."""


class TestLockDiscipline:
    RULE = "lock-discipline"

    def test_fires_on_unguarded_read(self, lint_source):
        findings = lint_source(
            """
            import threading
            from repro.contracts import guarded_by

            @guarded_by("_lock", "_count")
            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def peek(self):
                    return self._count
            """,
            rule=self.RULE,
        )
        assert len(findings) == 1
        assert "Counter._count" in findings[0].message
        assert "read of" in findings[0].message

    def test_fires_on_unguarded_write(self, lint_source):
        findings = lint_source(
            """
            import threading
            from repro.contracts import guarded_by

            @guarded_by("_lock", "_count")
            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def bump(self):
                    self._count += 1
            """,
            rule=self.RULE,
        )
        assert len(findings) == 1
        assert "write to" in findings[0].message

    def test_quiet_when_access_is_under_the_lock(self, lint_source):
        findings = lint_source(
            """
            import threading
            from repro.contracts import guarded_by

            @guarded_by("_lock", "_count")
            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def bump(self):
                    with self._lock:
                        self._count += 1
                        return self._count
            """,
            rule=self.RULE,
        )
        assert findings == []

    def test_quiet_under_wrong_lock_fires(self, lint_source):
        findings = lint_source(
            """
            import threading
            from repro.contracts import guarded_by

            @guarded_by("_lock", "_count")
            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._other = threading.Lock()
                    self._count = 0

                def bump(self):
                    with self._other:
                        self._count += 1
            """,
            rule=self.RULE,
        )
        assert len(findings) == 1

    def test_init_and_single_threaded_methods_are_exempt(self, lint_source):
        findings = lint_source(
            """
            import threading
            from repro.contracts import guarded_by, single_threaded

            @guarded_by("_lock", "_count")
            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                @single_threaded
                def reset_after_fork(self):
                    self._lock = threading.Lock()
                    self._count = 0
            """,
            rule=self.RULE,
        )
        assert findings == []

    def test_pragma_suppresses_double_checked_read(self, lint_source):
        findings = lint_source(
            """
            import threading
            from repro.contracts import guarded_by

            @guarded_by("_lock", "_cached")
            class Lazy:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cached = None

                def value(self):
                    cached = self._cached  # lint: ignore[lock-discipline]
                    if cached is None:
                        with self._lock:
                            cached = self._cached
                            if cached is None:
                                cached = self._cached = object()
                    return cached
            """,
            rule=self.RULE,
        )
        assert findings == []

    def test_nested_class_self_is_not_the_outer_self(self, lint_source):
        findings = lint_source(
            """
            import threading
            from repro.contracts import guarded_by

            @guarded_by("_lock", "_count")
            class Outer:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def helper(self):
                    class Inner:
                        def touch(self):
                            return self._count
                    return Inner()
            """,
            rule=self.RULE,
        )
        assert findings == []


class TestForkSafety:
    RULE = "fork-safety"

    def test_fires_on_unreset_lock(self, lint_source):
        findings = lint_source(
            """
            import threading

            class Engine:
                def __init__(self):
                    self._lock = threading.Lock()

                def reset_after_fork(self):
                    pass
            """,
            rule=self.RULE,
        )
        assert len(findings) == 1
        assert "Engine._lock" in findings[0].message

    def test_quiet_when_lock_is_recreated(self, lint_source):
        findings = lint_source(
            """
            import threading

            class Engine:
                def __init__(self):
                    self._lock = threading.Lock()

                def reset_after_fork(self):
                    self._lock = threading.Lock()
            """,
            rule=self.RULE,
        )
        assert findings == []

    def test_delegated_component_reset_counts(self, lint_source):
        findings = lint_source(
            """
            from repro.obs.metrics import Metrics

            class Engine:
                def __init__(self):
                    self.metrics = Metrics()

                def reset_after_fork(self):
                    self.metrics.reset_after_fork()
            """,
            rule=self.RULE,
        )
        assert findings == []

    def test_plain_clear_call_does_not_count(self, lint_source):
        # .reset()/.clear() reuse the inherited (possibly locked) lock —
        # only re-creation or reset_after_fork() delegation is safe.
        findings = lint_source(
            """
            from repro.obs.metrics import Metrics

            class Engine:
                def __init__(self):
                    self.metrics = Metrics()

                def reset_after_fork(self):
                    self.metrics.reset()
            """,
            rule=self.RULE,
        )
        assert len(findings) == 1

    def test_fork_shared_declares_the_exception(self, lint_source):
        findings = lint_source(
            """
            from repro.contracts import fork_shared
            from repro.obs.metrics import Metrics

            @fork_shared("metrics")
            class Engine:
                def __init__(self):
                    self.metrics = Metrics()

                def reset_after_fork(self):
                    pass
            """,
            rule=self.RULE,
        )
        assert findings == []

    def test_classes_without_reset_hook_are_out_of_scope(self, lint_source):
        findings = lint_source(
            """
            import threading

            class PlainHelper:
                def __init__(self):
                    self._lock = threading.Lock()
            """,
            rule=self.RULE,
        )
        assert findings == []


class TestFrozenStore:
    RULE = "frozen-store"

    def test_fires_on_add_to_compacted_local(self, lint_source):
        findings = lint_source(
            """
            def build(store, triple):
                frozen = store.compacted()
                frozen.add(triple)
            """,
            rule=self.RULE,
        )
        assert len(findings) == 1
        assert ".add()" in findings[0].message

    def test_fires_on_snapshot_loaded_self_attribute(self, lint_source):
        findings = lint_source(
            """
            from repro.rdf.snapshot import load_snapshot

            class Holder:
                def __init__(self, path, triple):
                    self.store = load_snapshot(path)
                    self.store.remove(triple)
            """,
            rule=self.RULE,
        )
        assert len(findings) == 1

    def test_fires_on_annotated_compact_backend_parameter(self, lint_source):
        findings = lint_source(
            """
            def corrupt(backend: "CompactBackend", triple):
                backend.add_all([triple])
            """,
            rule=self.RULE,
        )
        assert len(findings) == 1

    def test_quiet_on_mutable_store(self, lint_source):
        findings = lint_source(
            """
            def build(store, triple):
                store.add(triple)
                compact = store.compacted()
                return compact.triples()
            """,
            rule=self.RULE,
        )
        assert findings == []

    def test_fires_on_add_to_sharded_local(self, lint_source):
        findings = lint_source(
            """
            def build(store, triple):
                frozen = store.sharded(8)
                frozen.add(triple)
            """,
            rule=self.RULE,
        )
        assert len(findings) == 1
        assert ".add()" in findings[0].message

    def test_fires_on_overlay_receiver_mutation(self, lint_source):
        # Calling .overlay() certifies the receiver frozen; mutating it
        # afterwards would silently desynchronize the overlay's merge.
        findings = lint_source(
            """
            def build(store, triple):
                base = store.compacted()
                live = base.overlay()
                base.add(triple)
                return live
            """,
            rule=self.RULE,
        )
        assert len(findings) == 1
        assert "frozen" in findings[0].message

    def test_fires_on_overlay_backend_captured_base(self, lint_source):
        findings = lint_source(
            """
            from repro.rdf.overlay import OverlayBackend

            def build(backend, triple):
                overlay = OverlayBackend(backend)
                backend.add_all_ids([triple])
                return overlay
            """,
            rule=self.RULE,
        )
        assert len(findings) == 1
        assert ".add_all_ids()" in findings[0].message

    def test_quiet_on_mutating_the_overlay_itself(self, lint_source):
        # The overlay is the writable side — only its base is frozen.
        findings = lint_source(
            """
            from repro.rdf.overlay import OverlayBackend

            def build(backend, triple):
                overlay = OverlayBackend(backend)
                overlay.add_all_ids([triple])
                return overlay
            """,
            rule=self.RULE,
        )
        assert findings == []

    def test_fires_on_add_all_ids_to_compacted(self, lint_source):
        findings = lint_source(
            """
            def build(store, triples):
                frozen = store.compacted()
                frozen.add_all_ids(triples)
            """,
            rule=self.RULE,
        )
        assert len(findings) == 1

    def test_fires_on_sharded_backend_constructor(self, lint_source):
        findings = lint_source(
            """
            from repro.rdf.shard import ShardedBackend

            def build(segments, triple):
                backend = ShardedBackend(segments)
                backend.add_all([triple])
            """,
            rule=self.RULE,
        )
        assert len(findings) == 1

    def test_fires_on_annotated_sharded_backend_parameter(self, lint_source):
        findings = lint_source(
            """
            def corrupt(backend: "ShardedBackend", triple):
                backend.add(triple)
            """,
            rule=self.RULE,
        )
        assert len(findings) == 1

    def test_quiet_on_sharded_reads(self, lint_source):
        findings = lint_source(
            """
            def query(store, sid):
                frozen = store.sharded(4)
                return list(frozen.triples_ids(s=sid))
            """,
            rule=self.RULE,
        )
        assert findings == []


class TestMonotonicTime:
    RULE = "monotonic-time"

    def test_fires_on_time_time(self, lint_source):
        findings = lint_source(
            """
            import time

            def deadline(budget):
                return time.time() + budget
            """,
            rule=self.RULE,
        )
        assert len(findings) == 1
        assert "time.monotonic()" in findings[0].message

    def test_fires_on_bare_imported_time(self, lint_source):
        findings = lint_source(
            """
            from time import time

            def deadline(budget):
                return time() + budget
            """,
            rule=self.RULE,
        )
        assert len(findings) == 1

    def test_quiet_on_monotonic(self, lint_source):
        findings = lint_source(
            """
            import time

            def deadline(budget):
                return time.monotonic() + budget
            """,
            rule=self.RULE,
        )
        assert findings == []

    def test_exempt_module_prefix(self, lint_source):
        findings = lint_source(
            """
            import time

            def wall_clock_stamp():
                return time.time()
            """,
            module="repro.experiments.harness",
            rule=self.RULE,
        )
        assert findings == []


class TestLayering:
    RULE = "layering"

    def test_fires_when_rdf_imports_serve(self, lint_source):
        findings = lint_source(
            """
            from repro.serve.engine import QAEngine
            """,
            module="repro.rdf.store",
            rule=self.RULE,
        )
        assert len(findings) == 1
        assert "layer boundary" in findings[0].message

    def test_fires_on_relative_import_crossing_layers(self, lint_source):
        # `from .. import serve`-style reaches resolve against the package.
        findings = lint_source(
            """
            import repro.cli
            """,
            module="repro.nlp.parser",
            rule=self.RULE,
        )
        assert len(findings) == 1

    def test_quiet_when_serve_imports_rdf(self, lint_source):
        findings = lint_source(
            """
            from repro.rdf.graph import KnowledgeGraph
            from repro.obs.metrics import Metrics
            """,
            module="repro.serve.engine",
            rule=self.RULE,
        )
        assert findings == []

    def test_fires_on_foreign_private_access(self, lint_source):
        findings = lint_source(
            """
            def peek(engine):
                return engine._pool
            """,
            module="repro.rdf.helper",
            rule=self.RULE,
        )
        assert len(findings) == 1
        assert "_pool" in findings[0].message

    def test_quiet_on_self_module_and_stdlib_privates(self, lint_source):
        findings = lint_source(
            """
            import os

            class Worker:
                def __init__(self):
                    self._token = 1

                def read(self):
                    return self._token

                def hard_exit(self):
                    os._exit(1)

            def clone(worker):
                return worker._token
            """,
            module="repro.rdf.helper",
            rule=self.RULE,
        )
        assert findings == []


class TestExceptionDiscipline:
    RULE = "exception-discipline"

    def test_fires_on_bare_exception_and_runtime_error(self, lint_source):
        findings = lint_source(
            """
            def entry(flag):
                if flag:
                    raise Exception("boom")
                raise RuntimeError("boom")
            """,
            rule=self.RULE,
        )
        assert len(findings) == 2

    def test_quiet_on_repro_error_subclass_and_value_error(self, lint_source):
        findings = lint_source(
            """
            from repro.exceptions import LintError

            def entry(flag):
                if flag:
                    raise ValueError("bad input")
                raise LintError("bad lint input")
            """,
            rule=self.RULE,
        )
        assert findings == []

    def test_bare_reraise_is_fine(self, lint_source):
        findings = lint_source(
            """
            def entry():
                try:
                    work()
                except KeyError:
                    raise
            """,
            rule=self.RULE,
        )
        assert findings == []
