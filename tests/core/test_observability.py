"""End-to-end tracing: one question, the full span tree and counters."""

import pytest

from repro import obs
from repro.core import GAnswer

QUESTION = "Who is the mayor of Berlin?"


@pytest.fixture
def traced(kg, dictionary):
    tracer = obs.Tracer()
    system = GAnswer(kg, dictionary, tracer=tracer)
    result = system.answer(QUESTION)
    return tracer, result


class TestRecordedSpanTree:
    def test_root_is_answer_span(self, traced):
        tracer, _result = traced
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.name == "answer"
        assert root.attributes["question"] == QUESTION
        assert root.attributes["answers"] == 1

    def test_understanding_stage_children(self, traced):
        tracer, _result = traced
        understanding = tracer.roots[0].find("understanding")
        assert understanding is not None
        names = [child.name for child in understanding.children]
        assert names == [
            "parse", "relation_extraction", "argument_finding", "qs_build",
        ]

    def test_evaluation_stage_children(self, traced):
        tracer, _result = traced
        evaluation = tracer.roots[0].find("evaluation")
        assert evaluation is not None
        names = [child.name for child in evaluation.children]
        assert names[0] == "candidate_mapping"
        assert "top_k.search" in names
        assert names[-1] == "sparql_generation"
        # Entity linking happens per phrase inside candidate mapping.
        assert evaluation.find("linking") is not None

    def test_stage_durations_sum_into_parents(self, traced):
        tracer, result = traced
        root = tracer.roots[0]
        understanding = root.find("understanding")
        evaluation = root.find("evaluation")
        assert understanding.duration + evaluation.duration <= root.duration
        assert result.understanding_time == pytest.approx(understanding.duration)
        assert result.evaluation_time == pytest.approx(evaluation.duration)
        for span in root.walk():
            assert span.end is not None, f"span {span.name} left open"

    def test_search_counters_recorded(self, traced):
        tracer, _result = traced
        counters = tracer.metrics.counters
        assert counters["top_k.searches"] >= 1
        assert counters["top_k.seeds_explored"] >= 1
        assert counters["matcher.expansions"] >= 1
        assert counters["linker.lookups"] >= 1
        assert sum(
            count for name, count in counters.items()
            if name.startswith("top_k.terminated.")
        ) == counters["top_k.searches"]

    def test_search_span_attributes(self, traced):
        tracer, result = traced
        search = tracer.roots[0].find("top_k.search")
        assert search.attributes["terminated_by"] in {
            "threshold", "exhausted", "pruned_empty", "empty",
        }
        assert search.attributes["matches"] >= 1
        assert result.answers  # the traced run still answers the question

    def test_json_export_shape(self, traced):
        tracer, _result = traced
        payload = tracer.to_dict()
        assert payload["spans"][0]["name"] == "answer"
        assert "counters" in payload["metrics"]
        summary = tracer.summary()
        for stage in ("answer", "understanding", "evaluation", "top_k.search"):
            assert summary["spans"][stage]["count"] >= 1


class TestNoopDefault:
    def test_untraced_run_records_nothing(self, kg, dictionary):
        system = GAnswer(kg, dictionary)
        result = system.answer(QUESTION)
        # The process-wide default is the no-op tracer: no spans, no
        # counters — but the coarse stage timings still populate.
        assert obs.get_tracer() is obs.NOOP
        assert obs.NOOP.roots == ()
        assert obs.NOOP.metrics.snapshot() == {"counters": {}, "histograms": {}}
        assert result.understanding_time > 0
        assert result.evaluation_time > 0

    def test_same_answers_with_and_without_tracing(self, kg, dictionary, traced):
        _tracer, traced_result = traced
        plain = GAnswer(kg, dictionary).answer(QUESTION)
        assert [str(t) for t in plain.answers] == [
            str(t) for t in traced_result.answers
        ]


class TestBindingCache:
    def test_binding_of_uses_cached_map(self, traced):
        _tracer, result = traced
        match = result.matches[0]
        for vertex_id, node_id in match.bindings:
            assert match.binding_of(vertex_id) == node_id
        assert match.binding_of(10_000) is None

    def test_cache_does_not_affect_equality_or_hash(self):
        from repro.match.matcher import GraphMatch

        a = GraphMatch(
            bindings=((0, 1),), vertex_confidences=((0, 1.0),),
            edge_assignments=(), score=0.0,
        )
        b = GraphMatch(
            bindings=((0, 1),), vertex_confidences=((0, 1.0),),
            edge_assignments=(), score=0.0,
        )
        assert a == b
        assert hash(a) == hash(b)
        assert a.binding_of(0) == 1
