"""Unit tests for the semantic query graph structures."""

import pytest

from repro.core.semantic_graph import SemanticQueryGraph, SemanticRelation
from repro.nlp import parse_question


@pytest.fixture
def tree():
    return parse_question("Who was married to an actor that played in Philadelphia?")


def node(tree, word):
    return tree.find_nodes(word=word)[0]


class TestSemanticQueryGraph:
    def test_add_vertex_assigns_sequential_ids(self, tree):
        graph = SemanticQueryGraph()
        v0 = graph.add_vertex(node(tree, "who"), "who", True)
        v1 = graph.add_vertex(node(tree, "actor"), "actor", False)
        assert (v0.vertex_id, v1.vertex_id) == (0, 1)

    def test_add_vertex_idempotent_per_node(self, tree):
        graph = SemanticQueryGraph()
        first = graph.add_vertex(node(tree, "actor"), "actor", False)
        second = graph.add_vertex(node(tree, "actor"), "actor", False)
        assert first is second
        assert len(graph.vertices) == 1

    def test_vertex_for_node(self, tree):
        graph = SemanticQueryGraph()
        actor = node(tree, "actor")
        vertex = graph.add_vertex(actor, "actor", False)
        assert graph.vertex_for_node(actor) is vertex
        assert graph.vertex_for_node(node(tree, "who")) is None

    def test_edges_are_directed_arg1_to_arg2(self, tree):
        graph = SemanticQueryGraph()
        who = graph.add_vertex(node(tree, "who"), "who", True)
        actor = graph.add_vertex(node(tree, "actor"), "actor", False)
        edge = graph.add_edge(who, actor, ("be", "marry", "to"))
        assert (edge.source, edge.target) == (who.vertex_id, actor.vertex_id)

    def test_wh_vertices(self, tree):
        graph = SemanticQueryGraph()
        graph.add_vertex(node(tree, "who"), "who", True)
        graph.add_vertex(node(tree, "actor"), "actor", False)
        assert [v.phrase for v in graph.wh_vertices()] == ["who"]

    def test_repr_readable(self, tree):
        graph = SemanticQueryGraph()
        who = graph.add_vertex(node(tree, "who"), "who", True)
        actor = graph.add_vertex(node(tree, "actor"), "actor", False)
        graph.add_edge(who, actor, ("be", "marry", "to"))
        text = repr(graph)
        assert "who" in text and "be marry to" in text


class TestSemanticRelation:
    def test_repr(self, tree):
        relation = SemanticRelation(
            ("play", "in"),
            node(tree, "that"),
            node(tree, "philadelphia"),
            (node(tree, "played"), node(tree, "in")),
        )
        text = repr(relation)
        assert "play in" in text
        assert "that" in text
        assert "Philadelphia" in text
