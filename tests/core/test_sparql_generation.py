"""Tests for emitting top-k SPARQL from matches (Algorithm 3's output).

The key invariant: evaluating an emitted query on the store returns
exactly the answers bound in the corresponding match.
"""

import pytest

from repro.core.sparql_generation import match_to_sparql
from repro.rdf import IRI
from repro.sparql import Variable, evaluate as sparql_evaluate, parse_query


def run_and_project(kg, query_text, variable_name):
    rows = sparql_evaluate(kg.store, parse_query(query_text))
    return {row[Variable(variable_name)] for row in rows}


class TestSparqlGeneration:
    def test_running_example_roundtrip(self, system, kg):
        result = system.answer(
            "Who was married to an actor that played in Philadelphia?"
        )
        graph = result.semantic_graph
        target = graph.wh_vertices()[0].vertex_id
        query_text = match_to_sparql(kg, graph, result.matches[0], {target})
        values = run_and_project(kg, query_text, f"v{target}")
        assert values == {IRI("res:Melanie_Griffith")}

    def test_every_match_roundtrips(self, system, kg):
        result = system.answer("Which cities does the Weser flow through?")
        graph = result.semantic_graph
        from repro.core.pipeline import target_vertices

        target = target_vertices(graph)[0].vertex_id
        bound_answers = set()
        for match, query_text in zip(result.matches, result.sparql_queries):
            values = run_and_project(kg, query_text, f"v{target}")
            expected = kg.term_of(match.binding_of(target))
            assert expected in values
            bound_answers |= values
        assert IRI("res:Bremen") in bound_answers

    def test_ask_form_without_targets(self, system, kg):
        result = system.answer("Is Michelle Obama the wife of Barack Obama?")
        query_text = result.sparql_queries[0]
        assert query_text.startswith("ASK")
        assert sparql_evaluate(kg.store, parse_query(query_text)) is True

    def test_multi_hop_path_expansion(self, system, kg):
        result = system.answer("Who is the youngest player in the Premier League?")
        # The player-league edge is a 2-hop path → two chained patterns
        # with a fresh intermediate variable.
        query_text = result.sparql_queries[0]
        assert "?m0" in query_text
        parsed = parse_query(query_text)
        assert len(parsed.patterns) >= 2

    def test_select_distinct_emitted(self, system):
        result = system.answer("Who is the mayor of Berlin?")
        assert result.sparql_queries[0].startswith("SELECT DISTINCT")
