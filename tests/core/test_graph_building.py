"""Tests for coreference resolution and semantic-query-graph assembly."""

import pytest

from repro.core import build_semantic_query_graph, resolve_coreference
from repro.core.demonyms import extract_demonym_relations
from repro.core.relation_extraction import RelationExtractor
from repro.core.argument_finding import ArgumentFinder
from repro.core.semantic_graph import SemanticRelation
from repro.nlp import parse_question
from repro.paraphrase import ParaphraseDictionary, PredicateMapping


def relations_for(question, *phrases):
    dictionary = ParaphraseDictionary()
    for phrase in phrases:
        dictionary.add(tuple(phrase.split()), [PredicateMapping((1,), 1.0)])
    tree = parse_question(question)
    finder = ArgumentFinder()
    relations = []
    for embedding in RelationExtractor(dictionary).find_embeddings(tree):
        result = finder.find_arguments(tree, embedding)
        if result is not None:
            relations.append(
                SemanticRelation(
                    embedding.phrase_words, result.arg1, result.arg2, embedding.nodes
                )
            )
    return tree, relations


class TestCoreference:
    def test_relative_pronoun_resolves_to_governor(self):
        tree, _ = relations_for(
            "Who was married to an actor that played in Philadelphia?",
            "be marry to", "play in",
        )
        that = tree.find_nodes(word="that")[0]
        assert resolve_coreference(that).lower == "actor"

    def test_coordinated_clause_resolves_through_conj(self):
        tree, _ = relations_for(
            "Give me all people that were born in Vienna and died in Berlin.",
            "be bear in", "die in",
        )
        that = tree.find_nodes(word="that")[0]
        assert resolve_coreference(that).lower == "people"

    def test_wh_determiner_resolves_to_noun(self):
        tree, _ = relations_for("Which cities does the Weser flow through?", "flow through")
        which = tree.find_nodes(word="which")[0]
        assert resolve_coreference(which).lower == "cities"

    def test_plain_noun_resolves_to_itself(self):
        tree, _ = relations_for("Who is the mayor of Berlin?", "be the mayor of")
        berlin = tree.find_nodes(word="berlin")[0]
        assert resolve_coreference(berlin) is berlin


class TestGraphBuilding:
    def test_running_example_shares_vertex(self):
        """Figure 2: 'actor' and 'that' merge into one vertex, giving a
        3-vertex, 2-edge path Q^S."""
        _, relations = relations_for(
            "Who was married to an actor that played in Philadelphia?",
            "be marry to", "play in",
        )
        graph = build_semantic_query_graph(relations)
        assert len(graph.vertices) == 3
        assert len(graph.edges) == 2
        shared = [
            v for v in graph.vertices.values() if v.phrase == "actor"
        ]
        assert len(shared) == 1
        incident = [
            e for e in graph.edges
            if shared[0].vertex_id in (e.source, e.target)
        ]
        assert len(incident) == 2

    def test_wh_vertex_flag(self):
        _, relations = relations_for("Who is the mayor of Berlin?", "be the mayor of")
        graph = build_semantic_query_graph(relations)
        wh = graph.wh_vertices()
        assert len(wh) == 1
        assert wh[0].phrase == "who"

    def test_wh_determined_noun_not_wh_vertex(self):
        _, relations = relations_for(
            "Which cities does the Weser flow through?", "flow through"
        )
        graph = build_semantic_query_graph(relations)
        phrases = {v.phrase for v in graph.vertices.values()}
        assert "cities" in phrases
        assert not graph.wh_vertices()

    def test_degenerate_self_loop_dropped(self):
        tree = parse_question("Who was married to an actor?")
        actor = tree.find_nodes(word="actor")[0]
        relation = SemanticRelation(("fake",), actor, actor, (actor,))
        graph = build_semantic_query_graph([relation])
        assert graph.edges == []

    def test_multiword_phrase_on_vertex(self):
        _, relations = relations_for(
            "Who was the successor of John F. Kennedy?", "be the successor of"
        )
        graph = build_semantic_query_graph(relations)
        phrases = {v.phrase for v in graph.vertices.values()}
        assert "John F. Kennedy" in phrases


class TestDemonyms:
    def test_argentine_films(self):
        tree = parse_question("Give me all Argentine films.")
        relations = extract_demonym_relations(tree)
        assert len(relations) == 1
        relation = relations[0]
        assert relation.phrase_words == ("demonym",)
        assert relation.arg1.lower == "films"
        assert relation.arg2.word == "Argentina"

    def test_demonym_on_proper_noun_ignored(self):
        # "the former Dutch queen Juliana" modifies a name, not a class.
        tree = parse_question("In which city was the former Dutch queen Juliana buried?")
        assert extract_demonym_relations(tree) == []

    def test_used_indexes_respected(self):
        tree = parse_question("Give me all Argentine films.")
        argentine = tree.find_nodes(word="argentine")[0]
        taken = frozenset({argentine.index})
        assert extract_demonym_relations(tree, taken) == []

    def test_vertex_phrase_drops_demonym(self):
        from repro.core.graph_builder import _vertex_phrase

        tree = parse_question("Give me all Argentine films.")
        films = tree.find_nodes(word="films")[0]
        assert _vertex_phrase(films) == "films"
