"""Tests for the superlative post-processing extension."""

import pytest

from repro.core.aggregation import SUPERLATIVE_ATTRIBUTES, _attribute_value, apply_superlative
from repro.core.pipeline import Answer
from repro.rdf import IRI, Literal


def make_answer(question, *answer_terms):
    answer = Answer(question=question)
    answer.answers = list(answer_terms)
    answer.failure = "aggregation"
    return answer


class TestAttributeValue:
    def test_numeric_attribute(self, kg):
        value = _attribute_value(kg, IRI("res:Michael_Jordan"), ("height",))
        assert value == pytest.approx(1.98)

    def test_date_attribute_is_string(self, kg):
        value = _attribute_value(kg, IRI("res:Raheem_Sterling"), ("birthDate",))
        assert value == "1994-12-08"

    def test_fallback_predicate_order(self, kg):
        value = _attribute_value(kg, IRI("res:Zugspitze"), ("height", "elevation"))
        assert value == pytest.approx(2962)

    def test_missing_attribute(self, kg):
        assert _attribute_value(kg, IRI("res:Berlin"), ("height",)) is None

    def test_literal_answer_has_no_attribute(self, kg):
        assert _attribute_value(kg, Literal("1.98"), ("height",)) is None

    def test_unknown_entity(self, kg):
        assert _attribute_value(kg, IRI("res:Nobody"), ("height",)) is None


class TestApplySuperlative:
    def test_youngest_picks_latest_birthdate(self, kg):
        answer = make_answer(
            "Who is the youngest player in the Premier League?",
            IRI("res:Ryan_Giggs"), IRI("res:Wayne_Rooney"), IRI("res:Raheem_Sterling"),
        )
        apply_superlative(kg, answer.question, answer)
        assert [str(a) for a in answer.answers] == ["res:Raheem_Sterling"]
        assert answer.failure is None

    def test_oldest_picks_earliest_birthdate(self, kg):
        answer = make_answer(
            "Who is the oldest player in the Premier League?",
            IRI("res:Ryan_Giggs"), IRI("res:Raheem_Sterling"),
        )
        apply_superlative(kg, answer.question, answer)
        assert [str(a) for a in answer.answers] == ["res:Ryan_Giggs"]

    def test_largest_population(self, kg):
        answer = make_answer(
            "What is the largest city in Germany?",
            IRI("res:Berlin"), IRI("res:Munich"), IRI("res:Hamburg"),
        )
        apply_superlative(kg, answer.question, answer)
        assert [str(a) for a in answer.answers] == ["res:Berlin"]

    def test_longest_river(self, kg):
        answer = make_answer(
            "What is the longest river in Germany?",
            IRI("res:Rhine"), IRI("res:Elbe"), IRI("res:Weser"),
        )
        apply_superlative(kg, answer.question, answer)
        assert [str(a) for a in answer.answers] == ["res:Rhine"]

    def test_no_superlative_is_noop(self, kg):
        answer = make_answer("Who plays?", IRI("res:Ryan_Giggs"), IRI("res:Wayne_Rooney"))
        apply_superlative(kg, answer.question, answer)
        assert len(answer.answers) == 2
        assert answer.failure == "aggregation"

    def test_no_attribute_values_is_noop(self, kg):
        answer = make_answer(
            "What is the largest nickname?", Literal("Fog City"), Literal("The Golden City")
        )
        apply_superlative(kg, answer.question, answer)
        assert len(answer.answers) == 2

    def test_empty_answers_is_noop(self, kg):
        answer = make_answer("Who is the youngest player?")
        apply_superlative(kg, answer.question, answer)
        assert answer.answers == []

    def test_lexicon_covers_common_superlatives(self):
        for word in ("youngest", "oldest", "largest", "smallest", "highest",
                     "tallest", "longest", "shortest"):
            assert word in SUPERLATIVE_ATTRIBUTES
