"""End-to-end tests for the possessive construction (the paper's
subject-like relations include ``poss``, Section 4.1.2)."""

import pytest

from repro.nlp import parse_question
from repro.nlp.tokenizer import tokenize
from repro.rdf import IRI


def answer_names(result):
    return sorted(
        term.local_name if isinstance(term, IRI) else str(term)
        for term in result.answers
    )


class TestTokenization:
    def test_clitic_split(self):
        texts = [t.text for t in tokenize("Margaret Thatcher's children")]
        assert texts == ["Margaret", "Thatcher", "'s", "children"]

    def test_internal_apostrophe_names_kept(self):
        texts = [t.text for t in tokenize("Who is O'Brien?")]
        assert "O'Brien" in texts

    def test_contractions_still_expand(self):
        texts = [t.text for t in tokenize("Who's the mayor?")]
        assert texts[:2] == ["Who", "is"]


class TestParsing:
    def test_poss_relation(self):
        tree = parse_question("Who are Margaret Thatcher's children?")
        edges = {(h.lower, rel, d.lower) for h, rel, d in tree.edges()}
        assert ("children", "poss", "thatcher") in edges
        assert ("thatcher", "possessive", "'s") in edges

    def test_possessor_keeps_compound(self):
        tree = parse_question("Who are Margaret Thatcher's children?")
        thatcher = tree.find_nodes(word="thatcher")[0]
        assert thatcher.phrase() == "Margaret Thatcher"

    def test_head_phrase_excludes_possessor(self):
        tree = parse_question("Who are Margaret Thatcher's children?")
        children = tree.find_nodes(word="children")[0]
        assert children.phrase() == "children"


class TestEndToEnd:
    def test_copular_possessive(self, system):
        result = system.answer("Who are Margaret Thatcher's children?")
        assert answer_names(result) == ["Carol_Thatcher", "Mark_Thatcher"]

    def test_imperative_possessive(self, system):
        result = system.answer("Give me Margaret Thatcher's children.")
        assert answer_names(result) == ["Carol_Thatcher", "Mark_Thatcher"]

    def test_possessive_with_literal_answer(self, system):
        result = system.answer("What is Angela Merkel's birth name?")
        assert answer_names(result) == ["Angela Dorothea Kasner"]

    def test_of_form_still_works(self, system):
        result = system.answer("List the children of Margaret Thatcher.")
        assert answer_names(result) == ["Carol_Thatcher", "Mark_Thatcher"]
