"""Tests for Algorithm 2: relation-phrase embeddings in dependency trees."""

import pytest

from repro.core.relation_extraction import RelationExtractor
from repro.nlp import parse_question
from repro.paraphrase import ParaphraseDictionary, PredicateMapping


def make_dictionary(*phrases):
    dictionary = ParaphraseDictionary()
    for phrase in phrases:
        dictionary.add(tuple(phrase.split()), [PredicateMapping((1,), 1.0)])
    return dictionary


def embeddings_of(question, *phrases):
    tree = parse_question(question)
    extractor = RelationExtractor(make_dictionary(*phrases))
    return extractor.find_embeddings(tree), tree


class TestEmbeddingFinding:
    def test_simple_verb_phrase(self):
        found, _ = embeddings_of("Who developed Minecraft?", "develop")
        assert len(found) == 1
        assert found[0].phrase_words == ("develop",)

    def test_multi_word_connected_subtree(self):
        found, _ = embeddings_of(
            "Who was married to an actor?", "be marry to"
        )
        assert len(found) == 1
        words = sorted(node.lower for node in found[0].nodes)
        assert words == ["married", "to", "was"]

    def test_long_distance_dependency(self):
        # "star in" embeds even with the preposition fronted (Section 4.1).
        found, _ = embeddings_of("In which movies did Antonio Banderas star?", "star in")
        assert len(found) == 1
        assert {node.lower for node in found[0].nodes} == {"star", "in"}

    def test_phrase_not_a_subtree_rejected(self):
        # "married in" is not connected in this tree (no "in" under married).
        found, _ = embeddings_of("Who was married to an actor?", "marry in")
        assert found == []

    def test_copular_noun_phrase(self):
        found, _ = embeddings_of("Who is the mayor of Berlin?", "be the mayor of")
        assert len(found) == 1
        assert len(found[0].nodes) == 4

    def test_longest_phrase_wins_overlap(self):
        found, _ = embeddings_of(
            "Who was married to an actor?", "marry", "be marry to"
        )
        assert len(found) == 1
        assert found[0].phrase_words == ("be", "marry", "to")

    def test_disjoint_phrases_both_found(self):
        found, _ = embeddings_of(
            "Who was married to an actor that played in Philadelphia?",
            "be marry to",
            "play in",
        )
        assert len(found) == 2
        assert [e.phrase_words for e in found] == [("be", "marry", "to"), ("play", "in")]

    def test_embedding_root_is_content_word(self):
        # A phrase rooted at a bare preposition must not embed.
        found, tree = embeddings_of(
            "In which UK city are the headquarters of the MI6?", "city in"
        )
        assert found == []

    def test_no_phrases_in_dictionary(self):
        found, _ = embeddings_of("Who developed Minecraft?", "paint")
        assert found == []

    def test_embedding_metadata(self):
        found, tree = embeddings_of("Who developed Minecraft?", "develop")
        embedding = found[0]
        assert embedding.size == 1
        assert embedding.root.lower == "developed"
        assert embedding.node_indexes() == frozenset({1})
