"""Tests for the derivation-trace explain API."""

import pytest

from repro.core.explain import explain


class TestExplain:
    def test_successful_answer_trace(self, system, kg):
        answer = system.answer(
            "Who was married to an actor that played in Philadelphia?"
        )
        trace = explain(kg, answer)
        assert "Semantic query graph" in trace
        assert "be marry to" in trace
        assert "Melanie_Griffith" in trace
        assert "Answer:" in trace
        assert "SELECT DISTINCT" in trace

    def test_confidences_shown(self, system, kg):
        answer = system.answer("Who is the mayor of Berlin?")
        trace = explain(kg, answer)
        assert "δ=" in trace

    def test_failure_trace(self, system, kg):
        answer = system.answer("Give me all launch pads operated by NASA.")
        trace = explain(kg, answer)
        assert "failure: relation_extraction" in trace

    def test_no_match_trace(self, system, kg):
        answer = system.answer("Who is the wife of Tom Hanks?")
        trace = explain(kg, answer)
        assert "No subgraph match" in trace

    def test_boolean_trace(self, system, kg):
        answer = system.answer("Is Michelle Obama the wife of Barack Obama?")
        assert "Answer: yes" in explain(kg, answer)

    def test_rules_reported(self, system, kg):
        answer = system.answer("Give me all movies directed by Francis Ford Coppola.")
        assert "rule2" in explain(kg, answer)

    def test_max_matches_truncation(self, system, kg):
        answer = system.answer("Which countries are connected by the Rhine?")
        trace = explain(kg, answer, max_matches=1)
        if len(answer.matches) > 1:
            assert "more match(es)" in trace

    def test_multi_hop_path_rendered(self, system, kg):
        answer = system.answer("Who is the youngest player in the Premier League?")
        trace = explain(kg, answer)
        assert "team·league" in trace
