"""Tests for argument attachment and heuristic Rules 1–4 (Section 4.1.2)."""

import pytest

from repro.core.argument_finding import ArgumentFinder
from repro.core.relation_extraction import RelationExtractor
from repro.nlp import parse_question
from repro.paraphrase import ParaphraseDictionary, PredicateMapping


def setup(question, *phrases):
    dictionary = ParaphraseDictionary()
    for phrase in phrases:
        dictionary.add(tuple(phrase.split()), [PredicateMapping((1,), 1.0)])
    tree = parse_question(question)
    embeddings = RelationExtractor(dictionary).find_embeddings(tree)
    assert embeddings, f"no embedding for {phrases} in {question!r}"
    return tree, embeddings


class TestBaseRecognition:
    def test_subject_and_object_relations(self):
        tree, (emb,) = setup("Who was married to an actor?", "be marry to")
        result = ArgumentFinder().find_arguments(tree, emb)
        assert result.arg1.lower == "who"
        assert result.arg2.lower == "actor"
        assert result.rules_used == frozenset()

    def test_relative_clause_subject(self):
        tree, embeddings = setup(
            "Who was married to an actor that played in Philadelphia?",
            "be marry to", "play in",
        )
        played = [e for e in embeddings if e.phrase_words == ("play", "in")][0]
        result = ArgumentFinder().find_arguments(tree, played)
        assert result.arg1.lower == "that"
        assert result.arg2.lower == "philadelphia"

    def test_copular_arguments(self):
        tree, (emb,) = setup("Who is the mayor of Berlin?", "be the mayor of")
        result = ArgumentFinder().find_arguments(tree, emb)
        assert result.arg1.lower == "who"
        assert result.arg2.lower == "berlin"

    def test_nearest_candidate_wins(self):
        tree, (emb,) = setup("Who founded Intel?", "found")
        result = ArgumentFinder().find_arguments(tree, emb)
        assert result.arg1.lower == "who"
        assert result.arg2.lower == "intel"


class TestHeuristicRules:
    def test_rule2_modifier_parent(self):
        # "movies directed by Coppola": arg1 comes from the partmod parent.
        tree, (emb,) = setup(
            "Give me all movies directed by Francis Ford Coppola.", "direct by"
        )
        result = ArgumentFinder().find_arguments(tree, emb)
        assert result.arg1.lower == "movies"
        assert result.arg2.lower == "coppola"
        assert "rule2" in result.rules_used

    def test_rule2_root_as_argument(self):
        # "companies in Munich": the embedding root itself is arg1.
        tree, (emb,) = setup("Give me all companies in Munich.", "company in")
        result = ArgumentFinder().find_arguments(tree, emb)
        assert result.arg1.lower == "companies"
        assert result.arg2.lower == "munich"
        assert "rule2" in result.rules_used

    def test_rule3_coordinated_subject(self):
        tree, embeddings = setup(
            "Give me all people that were born in Vienna and died in Berlin.",
            "be bear in", "die in",
        )
        died = [e for e in embeddings if e.phrase_words == ("die", "in")][0]
        result = ArgumentFinder().find_arguments(tree, died)
        assert result.arg1.lower == "that"
        assert "rule3" in result.rules_used

    def test_rule4_wh_fallback(self):
        tree, (emb,) = setup("How tall is Michael Jordan?", "be tall")
        result = ArgumentFinder().find_arguments(tree, emb)
        assert result.arg1.lower == "jordan"
        assert result.arg2.lower == "how"
        assert "rule4" in result.rules_used

    def test_rules_disabled_loses_arguments(self):
        # The Table 9 ablation: without rules, partmod relations die.
        tree, (emb,) = setup(
            "Give me all movies directed by Francis Ford Coppola.", "direct by"
        )
        assert ArgumentFinder(use_heuristics=False).find_arguments(tree, emb) is None

    def test_rules_disabled_keeps_plain_cases(self):
        tree, (emb,) = setup("Who was married to an actor?", "be marry to")
        result = ArgumentFinder(use_heuristics=False).find_arguments(tree, emb)
        assert result is not None
        assert result.arg1.lower == "who"

    def test_unfindable_arguments_rejected(self):
        # A bare entity mention has no arguments at all; the relation
        # phrase is discarded (Section 4.1.2's final fallback).
        tree, (emb,) = setup("actor?", "actor")
        assert ArgumentFinder().find_arguments(tree, emb) is None
