"""End-to-end pipeline tests on the mini-DBpedia KG.

These pin the paper's running example and one representative of every
question shape the evaluation uses, including disambiguation behaviour and
failure classification.
"""

import pytest

from repro.rdf import IRI, Literal
from repro.sparql import evaluate as sparql_evaluate
from repro.sparql import parse_query


def answer_names(result):
    return sorted(
        term.local_name if isinstance(term, IRI) else str(term)
        for term in result.answers
    )


class TestRunningExample:
    def test_answer_is_melanie_griffith(self, system):
        result = system.answer(
            "Who was married to an actor that played in Philadelphia?"
        )
        assert result.failure is None
        assert answer_names(result) == ["Melanie_Griffith"]

    def test_ambiguity_resolved_to_film(self, system, kg):
        result = system.answer(
            "Who was married to an actor that played in Philadelphia?"
        )
        film = kg.id_of(IRI("res:Philadelphia_(film)"))
        bound = {node for match in result.matches for _v, node in match.bindings}
        assert film in bound
        city = kg.id_of(IRI("res:Philadelphia"))
        top = result.matches[0]
        assert city not in dict(top.bindings).values()

    def test_understanding_under_100ms(self, system):
        result = system.answer(
            "Who was married to an actor that played in Philadelphia?"
        )
        assert result.understanding_time < 0.1  # the paper's headline bound

    def test_emitted_sparql_evaluates_to_same_answer(self, system, kg):
        result = system.answer(
            "Who was married to an actor that played in Philadelphia?"
        )
        rows = sparql_evaluate(kg.store, parse_query(result.sparql_queries[0]))
        values = {term for row in rows for term in row.values()}
        assert IRI("res:Melanie_Griffith") in values


class TestQuestionShapes:
    def test_copular_factoid(self, system):
        assert answer_names(system.answer("Who is the mayor of Berlin?")) == [
            "Klaus_Wowereit"
        ]

    def test_imperative_list(self, system):
        result = system.answer("Give me all movies directed by Francis Ford Coppola.")
        assert answer_names(result) == [
            "Apocalypse_Now", "The_Godfather", "The_Godfather_Part_II",
        ]

    def test_class_constrained_wh(self, system):
        result = system.answer("Which cities does the Weser flow through?")
        assert answer_names(result) == ["Bremen", "Bremerhaven", "Minden"]

    def test_relative_clause_conjunction(self, system):
        result = system.answer(
            "Give me all people that were born in Vienna and died in Berlin."
        )
        assert answer_names(result) == ["Carl_Auer", "Rosa_Albach"]

    def test_numeric_literal_answer(self, system):
        result = system.answer("How tall is Michael Jordan?")
        assert [str(t) for t in result.answers] == ["1.98"]

    def test_date_literal_answer(self, system):
        result = system.answer("When did Michael Jackson die?")
        assert [str(t) for t in result.answers] == ["2009-06-25"]

    def test_literal_argument_linking(self, system):
        result = system.answer("Who was called Scarface?")
        assert answer_names(result) == ["Al_Capone"]

    def test_yes_no_true(self, system):
        result = system.answer("Is Michelle Obama the wife of Barack Obama?")
        assert result.boolean is True
        assert result.answers == []

    def test_yes_no_false_on_missing_fact(self, system):
        result = system.answer("Is Berlin the capital of Germany?")
        assert result.boolean is False

    def test_multi_constraint_question(self, system):
        result = system.answer(
            "Which books by Kerouac were published by Viking Press?"
        )
        assert answer_names(result) == ["On_the_Road", "The_Dharma_Bums"]

    def test_demonym_question(self, system):
        result = system.answer("Give me all Argentine films.")
        assert answer_names(result) == [
            "Nine_Queens", "The_Secret_in_Their_Eyes", "Wild_Tales",
        ]

    def test_unlinkable_common_noun_becomes_variable(self, system):
        result = system.answer("Which country does the creator of Miffy come from?")
        assert answer_names(result) == ["Netherlands"]

    def test_superlative_with_direct_predicate(self, system):
        result = system.answer("What is the largest city in Australia?")
        assert answer_names(result) == ["Sydney"]
        assert result.failure is None

    def test_multi_hop_path_question(self, system):
        # player --(team · league)--> Premier League: a 2-hop edge.
        result = system.answer("Who is the youngest player in the Premier League?")
        assert set(answer_names(result)) == {
            "Raheem_Sterling", "Ryan_Giggs", "Wayne_Rooney",
        }
        assert result.failure == "aggregation"


class TestTargetVertices:
    """Regression: every non-wh branch must yield a single target."""

    @staticmethod
    def _vertex_node(word, index, pos, deprel):
        from repro.nlp.dependency import DependencyNode
        from repro.nlp.tokenizer import Token

        return DependencyNode(Token(word, index, pos=pos), deprel=deprel)

    def test_two_direct_objects_yield_one_target(self):
        # "Compare the population of Berlin and the population of Paris" —
        # an imperative with two dobj-attached nominals.  The dobj branch
        # used to return both while the common-noun fallback truncated to
        # one; both now return the single earliest candidate.
        from repro.core.pipeline import target_vertices
        from repro.core.semantic_graph import SemanticQueryGraph

        graph = SemanticQueryGraph()
        second = self._vertex_node("capital", 6, "NN", "dobj")
        first = self._vertex_node("population", 2, "NN", "dobj")
        graph.add_vertex(second, "capital", is_wh=False)
        graph.add_vertex(first, "population", is_wh=False)
        targets = target_vertices(graph)
        assert len(targets) == 1
        assert targets[0].node.index == 2

    def test_multi_wh_still_returns_all(self):
        from repro.core.pipeline import target_vertices
        from repro.core.semantic_graph import SemanticQueryGraph

        graph = SemanticQueryGraph()
        who = self._vertex_node("who", 0, "WP", "nsubj")
        what = self._vertex_node("what", 4, "WP", "dobj")
        graph.add_vertex(what, "what", is_wh=True)
        graph.add_vertex(who, "who", is_wh=True)
        targets = target_vertices(graph)
        assert [v.node.index for v in targets] == [0, 4]

    def test_imperative_question_end_to_end(self, system):
        # An imperative with a conjoined object phrase must still answer
        # from exactly one projected target.
        result = system.answer("Give me all movies directed by Francis Ford Coppola.")
        assert result.failure is None
        assert len(result.answers) == 3


class TestFailureClassification:
    def test_entity_linking_failure(self, system):
        result = system.answer("In which UK city are the headquarters of the MI6?")
        assert result.failure == "entity_linking"
        assert not result.processed

    def test_relation_extraction_failure(self, system):
        result = system.answer("Give me all launch pads operated by NASA.")
        assert result.failure == "relation_extraction"

    def test_no_match_failure(self, system):
        result = system.answer("Who is the wife of Tom Hanks?")
        assert result.failure == "no_match"
        assert result.answers == []

    def test_aggregation_flag(self, system):
        result = system.answer("What is the highest mountain in Germany?")
        assert result.failure == "aggregation"
        assert len(result.answers) > 1


class TestAggregationExtension:
    def test_superlative_post_processing(self, kg, dictionary):
        from repro.core import GAnswer

        extended = GAnswer(kg, dictionary, enable_aggregation=True)
        result = extended.answer("Who is the youngest player in the Premier League?")
        assert answer_names(result) == ["Raheem_Sterling"]
        assert result.failure is None

    def test_oldest_uses_min(self, kg, dictionary):
        from repro.core import GAnswer

        extended = GAnswer(kg, dictionary, enable_aggregation=True)
        result = extended.answer("Who is the tallest player in the Premier League?")
        assert answer_names(result) == ["Ryan_Giggs"]

    def test_highest_mountain(self, kg, dictionary):
        from repro.core import GAnswer

        extended = GAnswer(kg, dictionary, enable_aggregation=True)
        result = extended.answer("What is the highest mountain in Germany?")
        assert answer_names(result) == ["Zugspitze"]


class TestAblationToggles:
    def test_without_rules_loses_questions(self, kg, dictionary):
        from repro.core import GAnswer

        no_rules = GAnswer(kg, dictionary, use_heuristic_rules=False)
        result = no_rules.answer("Give me all movies directed by Francis Ford Coppola.")
        assert result.failure == "relation_extraction"

    def test_without_ta_same_answers(self, kg, dictionary, system):
        from repro.core import GAnswer

        no_ta = GAnswer(kg, dictionary, use_ta=False)
        question = "Who was married to an actor that played in Philadelphia?"
        assert answer_names(no_ta.answer(question)) == answer_names(
            system.answer(question)
        )

    def test_without_pruning_same_answers(self, kg, dictionary, system):
        from repro.core import GAnswer

        no_pruning = GAnswer(kg, dictionary, use_pruning=False)
        question = "Which cities does the Weser flow through?"
        assert answer_names(no_pruning.answer(question)) == answer_names(
            system.answer(question)
        )


class TestAnswerObject:
    def test_timings_populated(self, system):
        result = system.answer("Who is the mayor of Berlin?")
        assert result.understanding_time > 0
        assert result.evaluation_time > 0
        assert result.total_time == pytest.approx(
            result.understanding_time + result.evaluation_time
        )

    def test_processed_semantics(self, system):
        answered = system.answer("Who is the mayor of Berlin?")
        assert answered.processed
        failed = system.answer("Give me all launch pads operated by NASA.")
        assert not failed.processed

    def test_sparql_for_every_top_match(self, system):
        result = system.answer("Which cities does the Weser flow through?")
        assert len(result.sparql_queries) == len(result.matches)
