"""Shared fixtures for core-pipeline tests: the mini KG and its dictionary.

Module-scoped because mining the dictionary walks the whole graph; the
objects are treated as read-only by every test.
"""

import pytest

from repro.core import GAnswer
from repro.datasets import build_dbpedia_mini, build_phrase_dataset
from repro.paraphrase import ParaphraseMiner


@pytest.fixture(scope="session")
def kg():
    return build_dbpedia_mini()


@pytest.fixture(scope="session")
def dictionary(kg):
    return ParaphraseMiner(kg, max_path_length=4, top_k=3).mine(build_phrase_dataset())


@pytest.fixture(scope="session")
def system(kg, dictionary):
    return GAnswer(kg, dictionary)
