"""Integration at scale: the full benchmark on the distractor-padded KG.

The headline numbers must be invariant to graph size — distractors grow
every candidate list but never participate in matches.
"""

import pytest

from repro.core import GAnswer
from repro.datasets import build_dbpedia_mini, build_phrase_dataset, qald_questions
from repro.eval import evaluate_system
from repro.paraphrase import ParaphraseMiner


@pytest.mark.slow
class TestScaledBenchmark:
    @pytest.fixture(scope="class")
    def padded_run(self):
        kg = build_dbpedia_mini(distractors_per_entity=50)
        dictionary = ParaphraseMiner(kg, max_path_length=4, top_k=3).mine(
            build_phrase_dataset()
        )
        return evaluate_system(GAnswer(kg, dictionary), qald_questions(), "padded")

    def test_right_count_invariant(self, padded_run):
        assert padded_run.summary.right == 32

    def test_same_questions_right(self, padded_run):
        from repro.experiments.paper import TABLE11_QUESTION_IDS

        measured = {o.question.qid for o in padded_run.right_questions()}
        assert measured == set(TABLE11_QUESTION_IDS)

    def test_failure_shape_invariant(self, padded_run):
        counts = padded_run.failure_counts()
        assert counts["aggregation"] > counts["entity_linking"] > counts[
            "relation_extraction"
        ]


class TestParameterValidation:
    def test_k_must_be_positive(self):
        from repro.core.top_k import TopKSearch
        from repro.datasets import build_dbpedia_mini

        kg = build_dbpedia_mini()
        with pytest.raises(ValueError):
            TopKSearch(kg, k=0)

    def test_ganswer_k_validated(self, kg, dictionary):
        with pytest.raises(ValueError):
            GAnswer(kg, dictionary, k=0)
