"""Tests for Algorithm 3: TA-style top-k search with pruning toggles."""

import copy

import pytest

from repro import obs
from repro.core.top_k import TopKSearch
from repro.match import (
    CandidateSpace,
    EdgeCandidate,
    QueryEdge,
    QueryVertex,
    VertexCandidate,
)
from repro.rdf import IRI, KnowledgeGraph, Triple, TripleStore
from repro.rdf.graph import forward_step


@pytest.fixture
def chain_kg():
    """A fan-out graph: hub connects to many leaves by several predicates."""
    store = TripleStore()
    for leaf in range(12):
        predicate = f"p{leaf % 3}"
        store.add(
            Triple(IRI("ex:hub"), IRI(f"ex:{predicate}"), IRI(f"ex:leaf{leaf}"))
        )
    return KnowledgeGraph(store)


def fan_space(kg, confidences):
    """hub --edge--> ?leaf with leaf candidates at given confidences."""
    space = CandidateSpace()
    hub = kg.id_of(IRI("ex:hub"))
    space.add_vertex(QueryVertex(0, candidates=[VertexCandidate(hub, 1.0)]))
    leaf_candidates = [
        VertexCandidate(kg.id_of(IRI(f"ex:leaf{i}")), conf)
        for i, conf in enumerate(confidences)
    ]
    space.add_vertex(QueryVertex(1, candidates=leaf_candidates))
    edges = [
        EdgeCandidate((forward_step(kg.id_of(IRI(f"ex:p{i}"))),), 1.0)
        for i in range(3)
    ]
    space.add_edge(QueryEdge(0, 1, candidates=edges))
    return space


class TestTopK:
    def test_returns_k_best(self, chain_kg):
        confidences = [1.0 - i * 0.05 for i in range(12)]
        space = fan_space(chain_kg, confidences)
        result = TopKSearch(chain_kg, k=3).search(space)
        assert len(result.matches) == 3
        scores = [m.score for m in result.matches]
        assert scores == sorted(scores, reverse=True)

    def test_k_larger_than_matches(self, chain_kg):
        space = fan_space(chain_kg, [0.9, 0.8])
        result = TopKSearch(chain_kg, k=10).search(space)
        assert len(result.matches) == 2

    def test_ties_at_kth_all_returned(self, chain_kg):
        # Footnote 4: matches sharing the k-th score are all returned.
        confidences = [0.9, 0.8, 0.8, 0.8, 0.1]
        space = fan_space(chain_kg, confidences)
        result = TopKSearch(chain_kg, k=2).search(space)
        assert len(result.matches) == 4  # 0.9 plus the three tied 0.8s

    def test_ta_matches_exhaustive(self, chain_kg):
        confidences = [1.0 - i * 0.07 for i in range(12)]
        space_ta = fan_space(chain_kg, confidences)
        space_full = fan_space(chain_kg, confidences)
        with_ta = TopKSearch(chain_kg, k=4, use_ta=True).search(space_ta)
        without = TopKSearch(chain_kg, k=4, use_ta=False).search(space_full)
        assert [m.key() for m in with_ta.matches] == [m.key() for m in without.matches]

    def test_ta_early_termination_explores_fewer_seeds(self):
        # Both endpoint lists have many candidates with a huge score gap
        # after the first — TA stops after one round-robin pass.
        store = TripleStore()
        for i in range(6):
            store.add(Triple(IRI(f"ex:hub{i}"), IRI("ex:p"), IRI(f"ex:leaf{i}")))
        kg = KnowledgeGraph(store)

        def space():
            s = CandidateSpace()
            gap = [1.0] + [0.01] * 5
            s.add_vertex(QueryVertex(0, candidates=[
                VertexCandidate(kg.id_of(IRI(f"ex:hub{i}")), conf)
                for i, conf in enumerate(gap)
            ]))
            s.add_vertex(QueryVertex(1, candidates=[
                VertexCandidate(kg.id_of(IRI(f"ex:leaf{i}")), conf)
                for i, conf in enumerate(gap)
            ]))
            s.add_edge(QueryEdge(0, 1, candidates=[
                EdgeCandidate((forward_step(kg.id_of(IRI("ex:p"))),), 1.0)
            ]))
            return s

        with_ta = TopKSearch(kg, k=1, use_ta=True).search(space())
        without = TopKSearch(kg, k=1, use_ta=False).search(space())
        assert with_ta.terminated_by == "threshold"
        assert with_ta.seeds_explored < without.seeds_explored
        assert with_ta.matches[0].key() == without.matches[0].key()

    def test_pruning_counts_removed_candidates(self, chain_kg):
        space = fan_space(chain_kg, [0.9, 0.8])
        # Add an unreachable candidate that pruning must remove.
        orphan_store_id = chain_kg.store.dictionary.encode(IRI("ex:orphan"))
        space.vertices[1].candidates.append(VertexCandidate(orphan_store_id, 0.99))
        result = TopKSearch(chain_kg, k=5, use_pruning=True).search(space)
        assert result.candidates_pruned >= 1

    def test_empty_candidate_list_returns_empty(self, chain_kg):
        space = CandidateSpace()
        space.add_vertex(QueryVertex(0, candidates=[]))
        result = TopKSearch(chain_kg).search(space)
        assert result.matches == []
        assert result.terminated_by == "empty"

    def test_exhausted_with_matches(self, chain_kg):
        # k exceeds the number of possible matches: the search drains every
        # seed combination and reports "exhausted", not "empty".
        space = fan_space(chain_kg, [0.9, 0.8])
        result = TopKSearch(chain_kg, k=10).search(space)
        assert len(result.matches) == 2
        assert result.terminated_by == "exhausted"

    def test_exhausted_with_zero_matches(self, chain_kg):
        # Candidate lists are non-empty but no binding satisfies the edge:
        # with pruning off the search runs dry and must say "exhausted"
        # (it explored seeds), not "empty" (it never had any).
        space = fan_space(chain_kg, [])
        orphan = chain_kg.store.dictionary.encode(IRI("ex:orphan"))
        space.vertices[1].candidates.append(VertexCandidate(orphan, 0.9))
        result = TopKSearch(chain_kg, k=3, use_pruning=False).search(space)
        assert result.matches == []
        assert result.seeds_explored >= 1
        assert result.terminated_by == "exhausted"

    def test_pruned_empty_distinct_from_empty(self, chain_kg):
        # The only candidate for vertex 1 is unreachable; pruning removes it
        # and empties the list.  That is "pruned_empty" — the space was
        # satisfiable-looking until pruning, unlike a born-empty list.
        space = fan_space(chain_kg, [])
        orphan = chain_kg.store.dictionary.encode(IRI("ex:orphan"))
        space.vertices[1].candidates.append(VertexCandidate(orphan, 0.9))
        result = TopKSearch(chain_kg, k=3, use_pruning=True).search(space)
        assert result.matches == []
        assert result.terminated_by == "pruned_empty"

    def test_ties_at_kth_terminate_exhausted_or_threshold(self, chain_kg):
        # Footnote 4 runs: whichever way the tie resolves, the reason must
        # be a real termination mode, never the legacy catch-all "empty".
        confidences = [0.9, 0.8, 0.8, 0.8, 0.1]
        space = fan_space(chain_kg, confidences)
        result = TopKSearch(chain_kg, k=2).search(space)
        assert result.terminated_by in {"threshold", "exhausted"}

    def test_ta_trajectory_recorded_under_tracer(self):
        # Both endpoint lists need several candidates, or list exhaustion
        # fires before the first TA round has a chance to be logged.
        store = TripleStore()
        for i in range(6):
            store.add(Triple(IRI(f"ex:hub{i}"), IRI("ex:p"), IRI(f"ex:leaf{i}")))
        kg = KnowledgeGraph(store)
        space = CandidateSpace()
        confidences = [1.0 - i * 0.15 for i in range(6)]
        space.add_vertex(QueryVertex(0, candidates=[
            VertexCandidate(kg.id_of(IRI(f"ex:hub{i}")), conf)
            for i, conf in enumerate(confidences)
        ]))
        space.add_vertex(QueryVertex(1, candidates=[
            VertexCandidate(kg.id_of(IRI(f"ex:leaf{i}")), conf)
            for i, conf in enumerate(confidences)
        ]))
        space.add_edge(QueryEdge(0, 1, candidates=[
            EdgeCandidate((forward_step(kg.id_of(IRI("ex:p"))),), 1.0)
        ]))
        tracer = obs.Tracer()
        result = TopKSearch(kg, k=2, use_ta=True).search(space, tracer=tracer)
        assert result.ta_trajectory, "recording tracer should capture θ/upbound"
        for point in result.ta_trajectory:
            assert set(point) == {"depth", "threshold", "upbound"}
        span = tracer.roots[0]
        assert span.name == "top_k.search"
        assert span.attributes["terminated_by"] == result.terminated_by
        assert span.attributes["seeds_explored"] == result.seeds_explored
        counters = tracer.metrics.counters
        assert counters["top_k.searches"] == 1
        assert counters["top_k.seeds_explored"] == result.seeds_explored
        assert counters[f"top_k.terminated.{result.terminated_by}"] == 1
        assert counters["matcher.expansions"] >= 1

    def test_no_trajectory_without_tracer(self, chain_kg):
        result = TopKSearch(chain_kg, k=2, use_ta=True).search(
            fan_space(chain_kg, [0.9, 0.8, 0.7])
        )
        assert result.ta_trajectory == []

    def test_all_wildcard_query(self, chain_kg):
        space = CandidateSpace()
        space.add_vertex(QueryVertex(0, wildcard=True))
        space.add_vertex(QueryVertex(1, wildcard=True))
        edges = [
            EdgeCandidate((forward_step(chain_kg.id_of(IRI("ex:p0"))),), 1.0)
        ]
        space.add_edge(QueryEdge(0, 1, candidates=edges))
        result = TopKSearch(chain_kg, k=2).search(space)
        assert 1 <= len(result.matches) <= 2
