"""Robustness: the pipeline must never raise on arbitrary question text.

A QA endpoint sees malformed input constantly; every path through the
pipeline ends in an Answer object with a failure tag, not an exception.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import Answer


_WORDS = [
    "who", "what", "which", "the", "of", "in", "married", "mayor", "Berlin",
    "Philadelphia", "give", "me", "all", "that", "played", "actor", "is",
    "was", "did", "and", "to", "by", "?", ".", ",", "76ers", "U.S.", "how",
]


class TestArbitraryInput:
    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.sampled_from(_WORDS), min_size=0, max_size=12))
    def test_word_salad_never_raises(self, system, words):
        result = system.answer(" ".join(words))
        assert isinstance(result, Answer)
        assert result.failure is None or isinstance(result.failure, str)

    @settings(max_examples=60, deadline=None)
    @given(st.text(max_size=60))
    def test_random_text_never_raises(self, system, text):
        result = system.answer(text)
        assert isinstance(result, Answer)

    @pytest.mark.parametrize(
        "weird",
        [
            "",
            "?",
            "???",
            "   ",
            "Who",
            "a b c d e f g h i j k l m n o p",
            "Who is the mayor of the mayor of the mayor of Berlin?",
            "Is is is is?",
            "WHO IS THE MAYOR OF BERLIN?",
            "who is the mayor of berlin",       # no capitals, no question mark
            "Wer ist der Bürgermeister von Berlin?",  # not English
            "SELECT ?x WHERE { ?x ?y ?z }",      # SPARQL pasted as a question
            "Who is the mayor of Berlin? Who is the mayor of Berlin?",
            "🙂 who is the mayor of Berlin 🙂",
        ],
    )
    def test_weird_inputs_never_raise(self, system, weird):
        result = system.answer(weird)
        assert isinstance(result, Answer)

    def test_lowercase_question_still_answers(self, system):
        # Entity linking is case-insensitive; a sloppy question still works.
        result = system.answer("who is the mayor of berlin")
        assert [str(a) for a in result.answers] == ["res:Klaus_Wowereit"]

    def test_repeated_answers_are_stable(self, system):
        question = "Who is the mayor of Berlin?"
        first = system.answer(question)
        second = system.answer(question)
        assert [str(a) for a in first.answers] == [str(a) for a in second.answers]


class TestDeannaRobustness:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.sampled_from(_WORDS), min_size=0, max_size=10))
    def test_deanna_never_raises(self, kg, dictionary, words):
        from repro.baselines import Deanna

        deanna = Deanna(kg, dictionary)
        result = deanna.answer(" ".join(words))
        assert isinstance(result, Answer)
