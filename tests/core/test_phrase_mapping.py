"""Unit tests for phrase mapping: wildcards, filters, candidate lists."""

import pytest

from repro.core.phrase_mapping import PhraseMapper
from repro.core.semantic_graph import SemanticQueryGraph
from repro.nlp import parse_question
from repro.rdf import IRI, Literal


def build_graph(question, arg_words):
    """A Q^S whose vertices are the named words of the parsed question."""
    tree = parse_question(question)
    graph = SemanticQueryGraph()
    nodes = [tree.find_nodes(word=word)[0] for word in arg_words]
    from repro.core.graph_builder import _is_wh_vertex, _vertex_phrase

    vertices = [
        graph.add_vertex(node, _vertex_phrase(node), _is_wh_vertex(node))
        for node in nodes
    ]
    if len(vertices) == 2:
        graph.add_edge(vertices[0], vertices[1], ("fake",))
    return graph, vertices


class TestVertexMapping:
    def test_wh_vertex_is_wildcard(self, kg, dictionary):
        mapper = PhraseMapper(kg, dictionary)
        graph, (who, berlin) = build_graph("Who is the mayor of Berlin?", ["who", "berlin"])
        space = mapper.build_candidate_space(graph)
        assert space.vertices[who.vertex_id].wildcard
        assert not space.vertices[berlin.vertex_id].wildcard

    def test_entity_vertex_candidates(self, kg, dictionary):
        mapper = PhraseMapper(kg, dictionary)
        graph, (who, berlin) = build_graph("Who is the mayor of Berlin?", ["who", "berlin"])
        space = mapper.build_candidate_space(graph)
        candidates = space.vertices[berlin.vertex_id].candidates
        assert kg.id_of(IRI("res:Berlin")) in {c.node_id for c in candidates}

    def test_unlinkable_common_noun_becomes_wildcard(self, kg, dictionary):
        mapper = PhraseMapper(kg, dictionary)
        graph, vertices = build_graph(
            "Which country does the creator of Miffy come from?", ["creator", "miffy"]
        )
        space = mapper.build_candidate_space(graph)
        assert space.vertices[vertices[0].vertex_id].wildcard

    def test_unlinkable_proper_noun_stays_empty(self, kg, dictionary):
        mapper = PhraseMapper(kg, dictionary)
        graph, vertices = build_graph(
            "Who is the front man of Nirvana?", ["who", "nirvana"]
        )
        space = mapper.build_candidate_space(graph)
        nirvana = space.vertices[vertices[1].vertex_id]
        assert not nirvana.wildcard
        assert nirvana.candidates == []


class TestWildcardFilters:
    @pytest.fixture
    def mapper(self, kg, dictionary):
        return PhraseMapper(kg, dictionary)

    def literal_id(self, kg, lexical):
        ids = kg.literal_ids_by_lexical(lexical)
        assert ids
        return min(ids)

    def test_when_filter_accepts_dates(self, mapper, kg):
        accepts = mapper._wildcard_filter("when")
        assert accepts(self.literal_id(kg, "2009-06-25"))
        assert not accepts(self.literal_id(kg, "1.98"))
        assert not accepts(kg.id_of(IRI("res:Berlin")))

    def test_how_filter_accepts_numbers(self, mapper, kg):
        accepts = mapper._wildcard_filter("how")
        assert accepts(self.literal_id(kg, "1.98"))
        assert not accepts(self.literal_id(kg, "Fog City"))

    def test_who_filter_rejects_literals(self, mapper, kg):
        accepts = mapper._wildcard_filter("who")
        assert accepts(kg.id_of(IRI("res:Berlin")))
        assert not accepts(self.literal_id(kg, "1.98"))

    def test_what_is_unrestricted(self, mapper):
        assert mapper._wildcard_filter("what") is None


class TestLongestMatchLinking:
    def test_extension_fires_on_exact_label(self, dictionary):
        from repro.datasets.yago_mini import build_yago_mini

        yago_kg = build_yago_mini()
        mapper = PhraseMapper(yago_kg, dictionary)
        tree = parse_question("Who won the Nobel Prize in Chemistry?")
        prize = tree.find_nodes(word="prize")[0]
        graph = SemanticQueryGraph()
        vertex = graph.add_vertex(prize, prize.phrase(), False)
        assert mapper._longest_linkable_phrase(vertex) == "Nobel Prize in Chemistry"

    def test_no_extension_without_exact_label(self, kg, dictionary):
        mapper = PhraseMapper(kg, dictionary)
        tree = parse_question("Give me all companies in Munich.")
        companies = tree.find_nodes(word="companies")[0]
        graph = SemanticQueryGraph()
        vertex = graph.add_vertex(companies, companies.phrase(), False)
        assert mapper._longest_linkable_phrase(vertex) == "companies"
